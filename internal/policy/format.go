package policy

import (
	"fmt"
	"strings"

	"github.com/aware-home/grbac/internal/core"
	"github.com/aware-home/grbac/internal/environment"
)

// Format renders the document back to policy-language source. The output
// parses to a semantically identical document (Parse(d.Format()) decides
// like d for every request), making the language a faithful serialization
// format: policies can be programmatically built, exported, edited, and
// re-compiled.
//
// Conditions render through formatCondition; conditions constructed
// outside the parser (custom Condition implementations) render via their
// String method, which may not be parseable — the built-in condition types
// all round-trip.
func (d *Document) Format() string {
	var b strings.Builder
	writeRoles := func(kind core.RoleKind, heading string) {
		wrote := false
		for _, r := range d.Roles {
			if r.Kind != kind {
				continue
			}
			if !wrote {
				fmt.Fprintf(&b, "# %s\n", heading)
				wrote = true
			}
			switch kind {
			case core.SubjectRole:
				b.WriteString("subject role ")
			case core.ObjectRole:
				b.WriteString("object role ")
			case core.EnvironmentRole:
				b.WriteString("env role ")
			}
			b.WriteString(string(r.ID))
			if len(r.Parents) > 0 {
				b.WriteString(" extends ")
				b.WriteString(joinRoles(r.Parents))
			}
			if r.Condition != nil {
				b.WriteString(" when ")
				b.WriteString(formatCondition(r.Condition))
			}
			b.WriteString(";\n")
		}
		if wrote {
			b.WriteString("\n")
		}
	}
	writeRoles(core.SubjectRole, "subject roles")
	writeRoles(core.ObjectRole, "object roles")
	writeRoles(core.EnvironmentRole, "environment roles")

	for _, s := range d.Subjects {
		fmt.Fprintf(&b, "subject %s is %s;\n", s.ID, joinRoles(s.Roles))
	}
	if len(d.Subjects) > 0 {
		b.WriteString("\n")
	}
	for _, o := range d.Objects {
		fmt.Fprintf(&b, "object %s is %s;\n", o.ID, joinRoles(o.Roles))
	}
	if len(d.Objects) > 0 {
		b.WriteString("\n")
	}
	for _, t := range d.Transactions {
		if len(t.Actions) == 0 {
			fmt.Fprintf(&b, "transaction %s;\n", t.ID)
			continue
		}
		actions := make([]string, len(t.Actions))
		for i, a := range t.Actions {
			actions[i] = string(a)
		}
		fmt.Fprintf(&b, "transaction %s of %s;\n", t.ID, strings.Join(actions, ", "))
	}
	if len(d.Transactions) > 0 {
		b.WriteString("\n")
	}
	for _, s := range d.SoDs {
		fmt.Fprintf(&b, "sod %s %q %s;\n", s.Kind, s.Name, joinRoles(s.Roles))
	}
	if len(d.SoDs) > 0 {
		b.WriteString("\n")
	}
	for _, r := range d.Rules {
		verb := "grant"
		if r.Effect == core.Deny {
			verb = "deny"
		}
		fmt.Fprintf(&b, "%s %s %s %s", verb,
			ruleName(r.Subject, core.AnySubject, "anyone"),
			txName(r.Transaction),
			ruleName(r.Object, core.AnyObject, "anything"))
		if r.Environment != core.AnyEnvironment {
			fmt.Fprintf(&b, " when %s", r.Environment)
		}
		if r.MinConfidence > 0 {
			fmt.Fprintf(&b, " with confidence >= %g", r.MinConfidence)
		}
		b.WriteString(";\n")
	}
	if d.Threshold != nil {
		fmt.Fprintf(&b, "\nthreshold %g;\n", d.Threshold.Value)
	}
	if d.Strategy != nil {
		fmt.Fprintf(&b, "\nstrategy %s;\n", d.Strategy.Name)
	}
	return b.String()
}

func joinRoles(roles []core.RoleID) string {
	parts := make([]string, len(roles))
	for i, r := range roles {
		parts[i] = string(r)
	}
	return strings.Join(parts, ", ")
}

func ruleName(id, wildcard core.RoleID, keyword string) string {
	if id == wildcard {
		return keyword
	}
	return string(id)
}

func txName(id core.TransactionID) string {
	if id == core.AnyTransaction {
		return "any"
	}
	return string(id)
}

// formatCondition renders a condition in parseable syntax. Unknown
// condition types fall back to their String form.
func formatCondition(c environment.Condition) string {
	switch cond := c.(type) {
	case environment.TimeIn:
		return fmt.Sprintf("time %q", cond.Period.String())
	case environment.AttrEquals:
		return fmt.Sprintf("attr %s == %s", cond.Key, formatValue(cond.Value))
	case environment.AttrCompare:
		return fmt.Sprintf("attr %s %s %g", cond.Key, compareOpText(cond.Op), cond.Threshold)
	case environment.AttrExists:
		return fmt.Sprintf("attr %s exists", cond.Key)
	case environment.SubjectAttrEquals:
		return fmt.Sprintf("subject-attr %s == %s", cond.Prefix, formatValue(cond.Value))
	case environment.All:
		return "all(" + joinConditions(cond) + ")"
	case environment.Any:
		return "any(" + joinConditions(cond) + ")"
	case environment.NotCond:
		return "not(" + formatCondition(cond.C) + ")"
	default:
		return c.String()
	}
}

func joinConditions(cs []environment.Condition) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = formatCondition(c)
	}
	return strings.Join(parts, ", ")
}

func formatValue(v environment.Value) string {
	switch v.Kind {
	case environment.KindString:
		return fmt.Sprintf("%q", v.Str)
	case environment.KindNumber:
		return fmt.Sprintf("%g", v.Num)
	case environment.KindBool:
		return fmt.Sprintf("%t", v.Bool)
	default:
		return "\"\""
	}
}

func compareOpText(op environment.CompareOp) string {
	switch op {
	case environment.OpEq:
		return "=="
	case environment.OpNe:
		return "!="
	case environment.OpLt:
		return "<"
	case environment.OpLe:
		return "<="
	case environment.OpGt:
		return ">"
	case environment.OpGe:
		return ">="
	default:
		return "=="
	}
}
