package policy

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParseNeverPanics feeds noise, truncations, and mutations of the home
// policy to the parser and compiler; they must error cleanly, never panic.
func TestParseNeverPanics(t *testing.T) {
	alphabet := []byte("abcdefghijklmnopqrstuvwxyz0123456789 ;,()\"<>=!.#\n-_")
	f := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic: %v", r)
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		var input string
		switch rng.Intn(3) {
		case 0: // noise
			n := rng.Intn(200)
			buf := make([]byte, n)
			for i := range buf {
				buf[i] = alphabet[rng.Intn(len(alphabet))]
			}
			input = string(buf)
		case 1: // truncated valid policy
			cut := rng.Intn(len(homePolicy))
			input = homePolicy[:cut]
		default: // mutated valid policy
			buf := []byte(homePolicy)
			for k := 0; k < 1+rng.Intn(8); k++ {
				buf[rng.Intn(len(buf))] = alphabet[rng.Intn(len(alphabet))]
			}
			input = string(buf)
		}
		doc, err := Parse(input)
		if err != nil {
			return true
		}
		// Parsed documents must format and re-parse without panicking.
		formatted := doc.Format()
		if _, err := Parse(formatted); err != nil {
			// Formatting output of a *parsed* document must stay
			// parseable — surface this as a failure.
			t.Logf("format output unparseable: %v\ninput:\n%s\nformatted:\n%s",
				err, input, formatted)
			return false
		}
		// Compilation may fail (dangling references), never panic.
		_, _ = Compile(input)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestLexerHandlesPathologicalInput covers lexer corner cases directly.
func TestLexerHandlesPathologicalInput(t *testing.T) {
	cases := []string{
		"",
		strings.Repeat(";", 1000),
		strings.Repeat("(", 500),
		"\"" + strings.Repeat("a", 10000),
		"# only a comment",
		"#",
		"\n\n\n",
		"\"escaped \\\" quote\";",
		"subject role a; # trailing comment",
		strings.Repeat("subject role x extends x;\n", 10),
		"grant a b c with confidence >= 0.5.5;",
		"attr <= >= == != < >",
	}
	for _, src := range cases {
		// Parse must terminate and not panic; error content is free-form.
		_, _ = Parse(src)
	}
}
