package policy

import (
	"github.com/aware-home/grbac/internal/core"
	"github.com/aware-home/grbac/internal/environment"
)

// Document is a parsed policy file: an ordered list of declarations.
type Document struct {
	Roles        []RoleDecl
	Subjects     []BindingDecl
	Objects      []BindingDecl
	Transactions []TransactionDecl
	Rules        []RuleDecl
	SoDs         []SoDDecl
	Threshold    *ThresholdDecl
	Strategy     *StrategyDecl
}

// RoleDecl declares a role of any kind, optionally with parents, and (for
// environment roles) an activation condition.
type RoleDecl struct {
	Line    int
	Kind    core.RoleKind
	ID      core.RoleID
	Parents []core.RoleID
	// Condition is the activation condition for environment roles; nil
	// for subject/object roles and for manually-activated environment
	// roles.
	Condition environment.Condition
}

// BindingDecl assigns roles to a subject or object:
// "subject alice is child;" / "object tv is entertainment-devices;".
type BindingDecl struct {
	Line  int
	ID    string
	Roles []core.RoleID
}

// TransactionDecl declares a transaction: "transaction use;" or a compound
// "transaction reorder-milk = read, order;".
type TransactionDecl struct {
	Line    int
	ID      core.TransactionID
	Actions []core.Action
}

// RuleDecl is one authorization: "grant child use entertainment-devices
// when weekday-free-time with confidence >= 0.9;". The wildcard identifiers
// anyone / anything / anytime / any map to the core wildcards.
type RuleDecl struct {
	Line          int
	Effect        core.Effect
	Subject       core.RoleID
	Transaction   core.TransactionID
	Object        core.RoleID
	Environment   core.RoleID
	MinConfidence float64
}

// SoDDecl declares a separation-of-duty constraint:
// "sod static "bank" teller, auditor;".
type SoDDecl struct {
	Line  int
	Name  string
	Kind  core.SoDKind
	Roles []core.RoleID
}

// ThresholdDecl sets the system-wide confidence threshold:
// "threshold 0.9;".
type ThresholdDecl struct {
	Line  int
	Value float64
}

// StrategyDecl selects the conflict-resolution strategy:
// "strategy deny-overrides;" (also permit-overrides, most-specific-wins).
type StrategyDecl struct {
	Line int
	Name string
}
