package policy

import (
	"errors"
	"fmt"
	"strconv"

	"github.com/aware-home/grbac/internal/core"
	"github.com/aware-home/grbac/internal/environment"
	"github.com/aware-home/grbac/internal/temporal"
)

// ErrSyntax reports a malformed policy source.
var ErrSyntax = errors.New("policy: syntax error")

// Parse reads policy source into a Document. It performs syntactic checks
// only; reference resolution happens in Compile.
func Parse(src string) (*Document, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSyntax, err)
	}
	p := &docParser{toks: toks}
	doc := &Document{}
	for p.peek().kind != tokenEOF {
		if err := p.parseStatement(doc); err != nil {
			return nil, err
		}
	}
	return doc, nil
}

type docParser struct {
	toks []token
	pos  int
}

func (p *docParser) peek() token { return p.toks[p.pos] }
func (p *docParser) peek2() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *docParser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokenEOF {
		p.pos++
	}
	return t
}

func (p *docParser) errf(t token, format string, args ...any) error {
	return fmt.Errorf("%w: line %d: %s", ErrSyntax, t.line, fmt.Sprintf(format, args...))
}

func (p *docParser) expectPunct(s string) error {
	t := p.next()
	if t.kind != tokenPunct || t.text != s {
		return p.errf(t, "expected %q, got %s", s, t)
	}
	return nil
}

func (p *docParser) expectIdent() (token, error) {
	t := p.next()
	if t.kind != tokenIdent {
		return t, p.errf(t, "expected identifier, got %s", t)
	}
	return t, nil
}

func (p *docParser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokenIdent || t.text != kw {
		return p.errf(t, "expected %q, got %s", kw, t)
	}
	return nil
}

func (p *docParser) parseStatement(doc *Document) error {
	t := p.peek()
	if t.kind != tokenIdent {
		return p.errf(t, "expected statement, got %s", t)
	}
	switch t.text {
	case "subject":
		if p.peek2().text == "role" {
			return p.parseRoleDecl(doc, core.SubjectRole)
		}
		return p.parseBinding(doc, true)
	case "object":
		if p.peek2().text == "role" {
			return p.parseRoleDecl(doc, core.ObjectRole)
		}
		return p.parseBinding(doc, false)
	case "env":
		return p.parseRoleDecl(doc, core.EnvironmentRole)
	case "transaction":
		return p.parseTransaction(doc)
	case "grant", "deny":
		return p.parseRule(doc)
	case "sod":
		return p.parseSoD(doc)
	case "threshold":
		return p.parseThreshold(doc)
	case "strategy":
		return p.parseStrategy(doc)
	default:
		return p.errf(t, "unknown statement %q", t.text)
	}
}

// parseStrategy: 'strategy' NAME ';'
func (p *docParser) parseStrategy(doc *Document) error {
	start := p.next() // strategy
	name := p.next()
	switch name.text {
	case "deny-overrides", "permit-overrides", "most-specific-wins":
	default:
		return p.errf(name, "unknown strategy %q (want deny-overrides, permit-overrides, or most-specific-wins)", name.text)
	}
	if err := p.expectPunct(";"); err != nil {
		return err
	}
	if doc.Strategy != nil {
		return p.errf(start, "strategy declared twice")
	}
	doc.Strategy = &StrategyDecl{Line: start.line, Name: name.text}
	return nil
}

// parseRoleDecl: ('subject'|'object'|'env') 'role' ID ('extends' list)?
// ('when' cond)? ';'
func (p *docParser) parseRoleDecl(doc *Document, kind core.RoleKind) error {
	start := p.next() // subject | object | env
	if err := p.expectKeyword("role"); err != nil {
		return err
	}
	id, err := p.expectIdent()
	if err != nil {
		return err
	}
	decl := RoleDecl{Line: start.line, Kind: kind, ID: core.RoleID(id.text)}
	if p.peek().text == "extends" {
		p.next()
		parents, err := p.parseIdentList()
		if err != nil {
			return err
		}
		for _, parent := range parents {
			decl.Parents = append(decl.Parents, core.RoleID(parent))
		}
	}
	if p.peek().text == "when" {
		if kind != core.EnvironmentRole {
			return p.errf(p.peek(), "only environment roles take a 'when' condition")
		}
		p.next()
		cond, err := p.parseCondition()
		if err != nil {
			return err
		}
		decl.Condition = cond
	}
	if err := p.expectPunct(";"); err != nil {
		return err
	}
	doc.Roles = append(doc.Roles, decl)
	return nil
}

// parseBinding: ('subject'|'object') ID 'is' list ';'
func (p *docParser) parseBinding(doc *Document, isSubject bool) error {
	start := p.next() // subject | object
	id, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectKeyword("is"); err != nil {
		return err
	}
	names, err := p.parseIdentList()
	if err != nil {
		return err
	}
	if err := p.expectPunct(";"); err != nil {
		return err
	}
	decl := BindingDecl{Line: start.line, ID: id.text}
	for _, n := range names {
		decl.Roles = append(decl.Roles, core.RoleID(n))
	}
	if isSubject {
		doc.Subjects = append(doc.Subjects, decl)
	} else {
		doc.Objects = append(doc.Objects, decl)
	}
	return nil
}

// parseTransaction: 'transaction' ID ('=' actionList)? ';'
// The '=' form is written with '==' rejected; we use 'of' keyword instead:
// transaction reorder-milk of read, order;
func (p *docParser) parseTransaction(doc *Document) error {
	start := p.next() // transaction
	id, err := p.expectIdent()
	if err != nil {
		return err
	}
	decl := TransactionDecl{Line: start.line, ID: core.TransactionID(id.text)}
	if p.peek().text == "of" {
		p.next()
		actions, err := p.parseIdentList()
		if err != nil {
			return err
		}
		for _, a := range actions {
			decl.Actions = append(decl.Actions, core.Action(a))
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return err
	}
	doc.Transactions = append(doc.Transactions, decl)
	return nil
}

// parseRule: ('grant'|'deny') SUBJ TX OBJ ('when' ENV)?
// ('with' 'confidence' '>=' NUM)? ';'
func (p *docParser) parseRule(doc *Document) error {
	verb := p.next()
	effect := core.Permit
	if verb.text == "deny" {
		effect = core.Deny
	}
	subj, err := p.expectIdent()
	if err != nil {
		return err
	}
	tx, err := p.expectIdent()
	if err != nil {
		return err
	}
	obj, err := p.expectIdent()
	if err != nil {
		return err
	}
	decl := RuleDecl{
		Line:        verb.line,
		Effect:      effect,
		Subject:     mapWildcard(subj.text, core.AnySubject, "anyone"),
		Transaction: mapTxWildcard(tx.text),
		Object:      mapWildcard(obj.text, core.AnyObject, "anything"),
		Environment: core.AnyEnvironment,
	}
	if p.peek().text == "when" {
		p.next()
		env, err := p.expectIdent()
		if err != nil {
			return err
		}
		decl.Environment = mapWildcard(env.text, core.AnyEnvironment, "anytime")
	}
	if p.peek().text == "with" {
		p.next()
		if err := p.expectKeyword("confidence"); err != nil {
			return err
		}
		op := p.next()
		if op.kind != tokenOp || op.text != ">=" {
			return p.errf(op, "expected >=, got %s", op)
		}
		num := p.next()
		if num.kind != tokenNumber {
			return p.errf(num, "expected number, got %s", num)
		}
		v, err := strconv.ParseFloat(num.text, 64)
		if err != nil || v < 0 || v > 1 {
			return p.errf(num, "confidence must be a number in [0,1]")
		}
		decl.MinConfidence = v
	}
	if err := p.expectPunct(";"); err != nil {
		return err
	}
	doc.Rules = append(doc.Rules, decl)
	return nil
}

func mapWildcard(text string, wildcard core.RoleID, keyword string) core.RoleID {
	if text == keyword || text == "*" {
		return wildcard
	}
	return core.RoleID(text)
}

func mapTxWildcard(text string) core.TransactionID {
	if text == "any" || text == "*" {
		return core.AnyTransaction
	}
	return core.TransactionID(text)
}

// parseSoD: 'sod' ('static'|'dynamic') STRING list ';'
func (p *docParser) parseSoD(doc *Document) error {
	start := p.next() // sod
	kindTok := p.next()
	var kind core.SoDKind
	switch kindTok.text {
	case "static":
		kind = core.StaticSoD
	case "dynamic":
		kind = core.DynamicSoD
	default:
		return p.errf(kindTok, "expected 'static' or 'dynamic', got %s", kindTok)
	}
	name := p.next()
	if name.kind != tokenString {
		return p.errf(name, "expected constraint name string, got %s", name)
	}
	roles, err := p.parseIdentList()
	if err != nil {
		return err
	}
	if err := p.expectPunct(";"); err != nil {
		return err
	}
	decl := SoDDecl{Line: start.line, Name: name.text, Kind: kind}
	for _, r := range roles {
		decl.Roles = append(decl.Roles, core.RoleID(r))
	}
	doc.SoDs = append(doc.SoDs, decl)
	return nil
}

// parseThreshold: 'threshold' NUM ';'
func (p *docParser) parseThreshold(doc *Document) error {
	start := p.next() // threshold
	num := p.next()
	if num.kind != tokenNumber {
		return p.errf(num, "expected number, got %s", num)
	}
	v, err := strconv.ParseFloat(num.text, 64)
	if err != nil || v < 0 || v > 1 {
		return p.errf(num, "threshold must be a number in [0,1]")
	}
	if err := p.expectPunct(";"); err != nil {
		return err
	}
	if doc.Threshold != nil {
		return p.errf(start, "threshold declared twice")
	}
	doc.Threshold = &ThresholdDecl{Line: start.line, Value: v}
	return nil
}

func (p *docParser) parseIdentList() ([]string, error) {
	first, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	out := []string{first.text}
	for p.peek().kind == tokenPunct && p.peek().text == "," {
		p.next()
		id, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		out = append(out, id.text)
	}
	return out, nil
}

// parseCondition: all(...) | any(...) | not(...) | time STRING |
// attr KEY (exists | OP value) | subject-attr PREFIX (==|!=) value
func (p *docParser) parseCondition() (environment.Condition, error) {
	t := p.next()
	if t.kind != tokenIdent {
		return nil, p.errf(t, "expected condition, got %s", t)
	}
	switch t.text {
	case "all", "any":
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var children []environment.Condition
		for {
			child, err := p.parseCondition()
			if err != nil {
				return nil, err
			}
			children = append(children, child)
			if p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if t.text == "all" {
			return environment.All(children), nil
		}
		return environment.Any(children), nil
	case "not":
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		child, err := p.parseCondition()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return environment.NotCond{C: child}, nil
	case "time":
		s := p.next()
		if s.kind != tokenString {
			return nil, p.errf(s, "time wants a quoted period, got %s", s)
		}
		period, err := temporal.Parse(s.text)
		if err != nil {
			return nil, p.errf(s, "bad period %q: %v", s.text, err)
		}
		return environment.TimeIn{Period: period}, nil
	case "attr":
		key, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		nxt := p.next()
		if nxt.kind == tokenIdent && nxt.text == "exists" {
			return environment.AttrExists{Key: key.text}, nil
		}
		if nxt.kind != tokenOp {
			return nil, p.errf(nxt, "expected operator or 'exists', got %s", nxt)
		}
		return p.finishAttrComparison(key.text, nxt)
	case "subject-attr":
		prefix, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		op := p.next()
		if op.kind != tokenOp || (op.text != "==" && op.text != "!=") {
			return nil, p.errf(op, "subject-attr supports == and !=, got %s", op)
		}
		val, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		cond := environment.Condition(environment.SubjectAttrEquals{Prefix: prefix.text, Value: val})
		if op.text == "!=" {
			cond = environment.NotCond{C: cond}
		}
		return cond, nil
	default:
		return nil, p.errf(t, "unknown condition %q", t.text)
	}
}

func (p *docParser) finishAttrComparison(key string, op token) (environment.Condition, error) {
	valTok := p.peek()
	val, err := p.parseValue()
	if err != nil {
		return nil, err
	}
	if val.Kind == environment.KindNumber {
		cmp, ok := map[string]environment.CompareOp{
			"==": environment.OpEq, "!=": environment.OpNe,
			"<": environment.OpLt, "<=": environment.OpLe,
			">": environment.OpGt, ">=": environment.OpGe,
		}[op.text]
		if !ok {
			return nil, p.errf(op, "unknown operator %q", op.text)
		}
		return environment.AttrCompare{Key: key, Op: cmp, Threshold: val.Num}, nil
	}
	// String and bool values support equality only.
	switch op.text {
	case "==":
		return environment.AttrEquals{Key: key, Value: val}, nil
	case "!=":
		return environment.NotCond{C: environment.AttrEquals{Key: key, Value: val}}, nil
	default:
		return nil, p.errf(valTok, "operator %q needs a numeric value", op.text)
	}
}

func (p *docParser) parseValue() (environment.Value, error) {
	t := p.next()
	switch t.kind {
	case tokenString:
		return environment.String(t.text), nil
	case tokenNumber:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return environment.Value{}, p.errf(t, "bad number %q", t.text)
		}
		return environment.Number(v), nil
	case tokenIdent:
		switch t.text {
		case "true":
			return environment.Bool(true), nil
		case "false":
			return environment.Bool(false), nil
		}
	}
	return environment.Value{}, p.errf(t, "expected value, got %s", t)
}
