package policy

import (
	"errors"
	"fmt"

	"github.com/aware-home/grbac/internal/core"
	"github.com/aware-home/grbac/internal/environment"
)

// ErrCompile reports a semantically invalid policy (dangling references,
// duplicate declarations, hierarchy cycles).
var ErrCompile = errors.New("policy: compile error")

// Compiled is a checked policy ready to apply to a system.
type Compiled struct {
	doc *Document
}

// Compile parses and checks policy source. All reference errors are
// reported against a scratch system, so Compile never leaves a target
// system partially configured.
func Compile(src string) (*Compiled, error) {
	doc, err := Parse(src)
	if err != nil {
		return nil, err
	}
	c := &Compiled{doc: doc}
	// Dry-run against scratch targets to surface semantic errors now.
	scratch := core.NewSystem()
	engine := environment.NewEngine(environment.NewStore())
	if err := c.Apply(scratch, engine); err != nil {
		return nil, err
	}
	return c, nil
}

// Document exposes the parsed declarations (read-only by convention).
func (c *Compiled) Document() *Document { return c.doc }

// Apply installs the policy into the given system and, when non-nil, the
// environment engine (for env-role conditions). The system should be
// freshly constructed; errors leave it partially configured.
func (c *Compiled) Apply(sys *core.System, engine *environment.Engine) error {
	doc := c.doc
	// Pass 1: declare all roles without parents so ordering never matters.
	for _, r := range doc.Roles {
		if err := sys.AddRole(core.Role{ID: r.ID, Kind: r.Kind}); err != nil {
			return fmt.Errorf("%w: line %d: role %q: %v", ErrCompile, r.Line, r.ID, err)
		}
	}
	// Pass 2: hierarchy edges.
	for _, r := range doc.Roles {
		for _, parent := range r.Parents {
			if err := sys.AddRoleParent(r.Kind, r.ID, parent); err != nil {
				return fmt.Errorf("%w: line %d: role %q extends %q: %v",
					ErrCompile, r.Line, r.ID, parent, err)
			}
		}
	}
	// Environment conditions.
	for _, r := range doc.Roles {
		if r.Condition == nil {
			continue
		}
		if engine == nil {
			return fmt.Errorf("%w: line %d: role %q has a condition but no environment engine was provided",
				ErrCompile, r.Line, r.ID)
		}
		if err := engine.Define(r.ID, r.Condition); err != nil {
			return fmt.Errorf("%w: line %d: role %q: %v", ErrCompile, r.Line, r.ID, err)
		}
	}
	// Transactions.
	for _, t := range doc.Transactions {
		tx := core.Transaction{ID: t.ID}
		if len(t.Actions) == 0 {
			tx.Steps = []core.Access{{Action: core.Action(t.ID)}}
		} else {
			for _, a := range t.Actions {
				tx.Steps = append(tx.Steps, core.Access{Action: a})
			}
		}
		if err := sys.AddTransaction(tx); err != nil {
			return fmt.Errorf("%w: line %d: transaction %q: %v", ErrCompile, t.Line, t.ID, err)
		}
	}
	// SoD constraints precede bindings so static constraints bind early.
	for _, s := range doc.SoDs {
		err := sys.AddSoDConstraint(core.SoDConstraint{Name: s.Name, Kind: s.Kind, Roles: s.Roles})
		if err != nil {
			return fmt.Errorf("%w: line %d: sod %q: %v", ErrCompile, s.Line, s.Name, err)
		}
	}
	// Bindings.
	for _, b := range doc.Subjects {
		if !sys.HasSubject(core.SubjectID(b.ID)) {
			if err := sys.AddSubject(core.SubjectID(b.ID)); err != nil {
				return fmt.Errorf("%w: line %d: subject %q: %v", ErrCompile, b.Line, b.ID, err)
			}
		}
		for _, r := range b.Roles {
			if err := sys.AssignSubjectRole(core.SubjectID(b.ID), r); err != nil {
				return fmt.Errorf("%w: line %d: subject %q is %q: %v", ErrCompile, b.Line, b.ID, r, err)
			}
		}
	}
	for _, b := range doc.Objects {
		if !sys.HasObject(core.ObjectID(b.ID)) {
			if err := sys.AddObject(core.ObjectID(b.ID)); err != nil {
				return fmt.Errorf("%w: line %d: object %q: %v", ErrCompile, b.Line, b.ID, err)
			}
		}
		for _, r := range b.Roles {
			if err := sys.AssignObjectRole(core.ObjectID(b.ID), r); err != nil {
				return fmt.Errorf("%w: line %d: object %q is %q: %v", ErrCompile, b.Line, b.ID, r, err)
			}
		}
	}
	// Rules.
	for _, r := range doc.Rules {
		perm := core.Permission{
			Subject:       r.Subject,
			Object:        r.Object,
			Environment:   r.Environment,
			Transaction:   r.Transaction,
			Effect:        r.Effect,
			MinConfidence: r.MinConfidence,
		}
		if err := sys.Grant(perm); err != nil {
			return fmt.Errorf("%w: line %d: rule: %v", ErrCompile, r.Line, err)
		}
	}
	if doc.Threshold != nil {
		if err := sys.SetMinConfidence(doc.Threshold.Value); err != nil {
			return fmt.Errorf("%w: line %d: threshold: %v", ErrCompile, doc.Threshold.Line, err)
		}
	}
	if doc.Strategy != nil {
		switch doc.Strategy.Name {
		case "deny-overrides":
			sys.SetConflictStrategy(core.DenyOverrides{})
		case "permit-overrides":
			sys.SetConflictStrategy(core.PermitOverrides{})
		case "most-specific-wins":
			sys.SetConflictStrategy(core.MostSpecificWins{})
		default:
			return fmt.Errorf("%w: line %d: unknown strategy %q",
				ErrCompile, doc.Strategy.Line, doc.Strategy.Name)
		}
	}
	return nil
}

// Build is the convenience form of Compile+Apply: it returns a fresh
// system and engine configured from source. The engine evaluates over a
// private empty store; use BuildWithStore when the caller needs to feed
// environment attributes (locations, load, sensor facts).
func Build(src string, opts ...core.Option) (*core.System, *environment.Engine, error) {
	return BuildWithStore(src, environment.NewStore(), opts...)
}

// BuildWithStore is Build with a caller-supplied attribute store, so the
// application (or the House model) can drive the environment the policy's
// conditions read.
func BuildWithStore(src string, store *environment.Store, opts ...core.Option) (*core.System, *environment.Engine, error) {
	compiled, err := Compile(src)
	if err != nil {
		return nil, nil, err
	}
	engine := environment.NewEngine(store)
	sys := core.NewSystem(append([]core.Option{core.WithEnvironmentSource(engine)}, opts...)...)
	if err := compiled.Apply(sys, engine); err != nil {
		return nil, nil, err
	}
	return sys, engine, nil
}
