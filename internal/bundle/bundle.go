// Package bundle implements signed, versioned policy bundles: a policy
// snapshot wrapped in a manifest and an ed25519 signature, so that every
// activation point in the deployment — primaries, followers, the routing
// tier, and embedded SDKs — can verify provenance before swapping the
// bundle in. Distribution channels (object stores, CI artifacts, config
// pushers) then need no trust of their own: a bundle that was tampered
// with in flight, or an old bundle replayed against a newer deployment,
// is rejected with a typed error before it touches the policy store.
//
// The signing payload is the canonical JSON encoding of the manifest and
// the state. core.State exports deterministically (sorted slices, fixed
// struct field order), so the payload is reproducible: sign and verify
// agree byte-for-byte without a separate canonicalization pass.
package bundle

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"github.com/aware-home/grbac/internal/core"
)

// Typed verification failures. Callers gate activation on errors.Is so
// transports can map them to distinct status codes.
var (
	// ErrUnsigned is returned for a bundle with no signature at all.
	ErrUnsigned = errors.New("bundle: unsigned")
	// ErrBadSignature is returned when the signature does not verify —
	// tampered content, a forged signature, or the wrong key.
	ErrBadSignature = errors.New("bundle: signature verification failed")
	// ErrStale is returned when a bundle's revision does not advance past
	// the active one: replaying an old bundle must not roll policy back.
	ErrStale = errors.New("bundle: stale revision")
)

// Algo is the only supported signature algorithm.
const Algo = "ed25519"

// Manifest describes a bundle's provenance: a monotonically increasing
// revision (staleness fencing), the build time, and which key signed it.
type Manifest struct {
	Revision  uint64    `json:"revision"`
	CreatedAt time.Time `json:"created_at"`
	KeyID     string    `json:"key_id,omitempty"`
	Algo      string    `json:"algo"`
}

// Bundle is a signed policy snapshot. Signature is the hex ed25519
// signature over the canonical payload (manifest + state); an empty
// Signature is an unsigned bundle and never verifies.
type Bundle struct {
	Manifest  Manifest   `json:"manifest"`
	State     core.State `json:"state"`
	Signature string     `json:"signature,omitempty"`
}

// payload is the byte string signatures cover: manifest and state,
// canonically JSON-encoded, excluding the signature itself.
func (b *Bundle) payload() ([]byte, error) {
	return json.Marshal(struct {
		Manifest Manifest   `json:"manifest"`
		State    core.State `json:"state"`
	}{b.Manifest, b.State})
}

// Build wraps a policy state in a bundle manifest, unsigned.
func Build(st core.State, revision uint64, createdAt time.Time) *Bundle {
	return &Bundle{
		Manifest: Manifest{Revision: revision, CreatedAt: createdAt.UTC(), Algo: Algo},
		State:    st,
	}
}

// Sign signs the bundle in place, recording the key ID in the manifest
// (so rotations can tell which key to verify with).
func (b *Bundle) Sign(priv ed25519.PrivateKey, keyID string) error {
	b.Manifest.KeyID = keyID
	if b.Manifest.Algo == "" {
		b.Manifest.Algo = Algo
	}
	pay, err := b.payload()
	if err != nil {
		return err
	}
	b.Signature = hex.EncodeToString(ed25519.Sign(priv, pay))
	return nil
}

// Verify checks the bundle's signature against pub. It returns
// ErrUnsigned for a missing signature and ErrBadSignature for one that
// does not verify (including an unsupported algorithm, which would have
// been signed under different rules).
func (b *Bundle) Verify(pub ed25519.PublicKey) error {
	if b.Signature == "" {
		return ErrUnsigned
	}
	if b.Manifest.Algo != Algo {
		return fmt.Errorf("%w: unsupported algorithm %q", ErrBadSignature, b.Manifest.Algo)
	}
	sig, err := hex.DecodeString(b.Signature)
	if err != nil || len(sig) != ed25519.SignatureSize {
		return fmt.Errorf("%w: malformed signature", ErrBadSignature)
	}
	pay, err := b.payload()
	if err != nil {
		return err
	}
	if !ed25519.Verify(pub, pay, sig) {
		return ErrBadSignature
	}
	return nil
}

// Encode renders the bundle as indented JSON, the on-disk and on-wire
// format.
func (b *Bundle) Encode() ([]byte, error) {
	return json.MarshalIndent(b, "", "  ")
}

// Decode parses a bundle. Unknown fields are rejected: a bundle is a
// security artifact, and silently dropping fields would let content ride
// along outside the signature.
func Decode(raw []byte) (*Bundle, error) {
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	var b Bundle
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("bundle: decode: %w", err)
	}
	return &b, nil
}

// GenerateKey creates a fresh ed25519 keypair.
func GenerateKey() (ed25519.PublicKey, ed25519.PrivateKey, error) {
	return ed25519.GenerateKey(rand.Reader)
}

// WriteKeyPair writes the private seed and public key as hex, one per
// file. The private file is created 0600.
func WriteKeyPair(privPath, pubPath string, pub ed25519.PublicKey, priv ed25519.PrivateKey) error {
	seed := hex.EncodeToString(priv.Seed())
	if err := os.WriteFile(privPath, []byte(seed+"\n"), 0o600); err != nil {
		return err
	}
	return os.WriteFile(pubPath, []byte(hex.EncodeToString(pub)+"\n"), 0o644)
}

// LoadPrivateKey reads a hex ed25519 seed file written by WriteKeyPair.
func LoadPrivateKey(path string) (ed25519.PrivateKey, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	seed, err := hex.DecodeString(strings.TrimSpace(string(raw)))
	if err != nil || len(seed) != ed25519.SeedSize {
		return nil, fmt.Errorf("bundle: %s is not a hex ed25519 seed", path)
	}
	return ed25519.NewKeyFromSeed(seed), nil
}

// LoadPublicKey reads a hex ed25519 public key file.
func LoadPublicKey(path string) (ed25519.PublicKey, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParsePublicKey(strings.TrimSpace(string(raw)))
}

// ParsePublicKey decodes a hex ed25519 public key.
func ParsePublicKey(hexKey string) (ed25519.PublicKey, error) {
	pub, err := hex.DecodeString(strings.TrimSpace(hexKey))
	if err != nil || len(pub) != ed25519.PublicKeySize {
		return nil, errors.New("bundle: not a hex ed25519 public key")
	}
	return ed25519.PublicKey(pub), nil
}

// KeyID returns a short fingerprint of a public key, recorded in signed
// manifests so operators can tell which key a bundle expects.
func KeyID(pub ed25519.PublicKey) string {
	return hex.EncodeToString(pub)[:12]
}

// Verifier is an activation gate: it holds the trusted public key and
// the highest revision admitted so far, and Admit only passes bundles
// that both verify and advance the revision. One Verifier guards one
// activation point (a server, a router, an embedded SDK).
type Verifier struct {
	pub ed25519.PublicKey

	mu       sync.Mutex
	revision uint64
	admitted uint64
	rejected uint64
}

// NewVerifier builds a verifier trusting pub, with no active revision
// (the first admitted bundle may carry any revision ≥ 1).
func NewVerifier(pub ed25519.PublicKey) *Verifier {
	return &Verifier{pub: pub}
}

// Admit decodes, verifies, and revision-checks a raw bundle. On success
// the bundle's revision becomes the new floor: concurrent and later
// Admit calls with the same or older revisions fail ErrStale. The
// returned bundle is only activated by the caller after Admit passes,
// so a failed activation does not roll the floor back — replays of the
// same revision stay fenced either way.
func (v *Verifier) Admit(raw []byte) (*Bundle, error) {
	b, err := Decode(raw)
	if err != nil {
		v.reject()
		return nil, err
	}
	if err := b.Verify(v.pub); err != nil {
		v.reject()
		return nil, err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if b.Manifest.Revision <= v.revision {
		v.rejected++
		return nil, fmt.Errorf("%w: revision %d, active %d", ErrStale, b.Manifest.Revision, v.revision)
	}
	v.revision = b.Manifest.Revision
	v.admitted++
	return b, nil
}

func (v *Verifier) reject() {
	v.mu.Lock()
	v.rejected++
	v.mu.Unlock()
}

// Revision returns the highest revision admitted so far (0 if none).
func (v *Verifier) Revision() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.revision
}

// Status is a point-in-time snapshot of a verifier, for status
// endpoints and stats output.
type Status struct {
	KeyID    string `json:"key_id"`
	Revision uint64 `json:"revision"`
	Admitted uint64 `json:"admitted"`
	Rejected uint64 `json:"rejected"`
}

// Status reports the verifier's trusted key fingerprint and counters.
func (v *Verifier) Status() Status {
	if v == nil {
		return Status{}
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return Status{KeyID: KeyID(v.pub), Revision: v.revision, Admitted: v.admitted, Rejected: v.rejected}
}
