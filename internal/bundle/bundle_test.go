package bundle

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"github.com/aware-home/grbac/internal/core"
	"github.com/aware-home/grbac/internal/policy"
)

const testPolicy = `
subject role family-member;
object role devices;
transaction use;
subject alice is family-member;
object tv is devices;
grant family-member use devices;
`

func testState(t *testing.T) core.State {
	t.Helper()
	compiled, err := policy.Compile(testPolicy)
	if err != nil {
		t.Fatal(err)
	}
	sys := core.NewSystem()
	if err := compiled.Apply(sys, nil); err != nil {
		t.Fatal(err)
	}
	st, _ := sys.Snapshot()
	return st
}

func signedBundle(t *testing.T, rev uint64) (*Bundle, []byte, *Verifier) {
	t.Helper()
	pub, priv, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	b := Build(testState(t), rev, time.Unix(1_700_000_000, 0))
	if err := b.Sign(priv, KeyID(pub)); err != nil {
		t.Fatal(err)
	}
	raw, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return b, raw, NewVerifier(pub)
}

func TestSignVerifyRoundTrip(t *testing.T) {
	b, raw, v := signedBundle(t, 1)
	got, err := v.Admit(raw)
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if got.Manifest.Revision != 1 || got.Manifest.Algo != Algo {
		t.Fatalf("manifest = %+v", got.Manifest)
	}
	if got.Manifest.KeyID != b.Manifest.KeyID {
		t.Fatalf("key id %q != %q", got.Manifest.KeyID, b.Manifest.KeyID)
	}
	// The admitted state is usable: activate it into a fresh system.
	sys := core.NewSystem()
	if err := sys.Replace(got.State); err != nil {
		t.Fatalf("Replace: %v", err)
	}
	ok, err := sys.CheckAccess(core.Request{Subject: "alice", Object: "tv", Transaction: "use"})
	if err != nil || !ok {
		t.Fatalf("CheckAccess after activation = %v, %v", ok, err)
	}
	if v.Revision() != 1 {
		t.Fatalf("Revision = %d", v.Revision())
	}
}

func TestUnsignedRejected(t *testing.T) {
	_, _, v := signedBundle(t, 1)
	b := Build(testState(t), 2, time.Now())
	raw, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Admit(raw); !errors.Is(err, ErrUnsigned) {
		t.Fatalf("unsigned bundle admitted: %v", err)
	}
}

func TestTamperedRejected(t *testing.T) {
	_, raw, v := signedBundle(t, 1)
	tampered := bytes.Replace(raw, []byte(`"alice"`), []byte(`"mallory"`), 1)
	if bytes.Equal(tampered, raw) {
		t.Fatal("tamper did not change the bundle")
	}
	if _, err := v.Admit(tampered); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered bundle admitted: %v", err)
	}
	st := v.Status()
	if st.Rejected != 1 || st.Admitted != 0 {
		t.Fatalf("status = %+v", st)
	}
}

func TestWrongKeyRejected(t *testing.T) {
	_, raw, _ := signedBundle(t, 1)
	otherPub, _, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewVerifier(otherPub).Admit(raw); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("wrong-key bundle admitted: %v", err)
	}
}

func TestStaleRevisionRejected(t *testing.T) {
	pub, priv, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(pub)
	sign := func(rev uint64) []byte {
		b := Build(testState(t), rev, time.Now())
		if err := b.Sign(priv, KeyID(pub)); err != nil {
			t.Fatal(err)
		}
		raw, err := b.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	if _, err := v.Admit(sign(3)); err != nil {
		t.Fatal(err)
	}
	// Replaying the same revision or an older one is fenced.
	if _, err := v.Admit(sign(3)); !errors.Is(err, ErrStale) {
		t.Fatalf("same-revision replay admitted: %v", err)
	}
	if _, err := v.Admit(sign(2)); !errors.Is(err, ErrStale) {
		t.Fatalf("rollback admitted: %v", err)
	}
	if _, err := v.Admit(sign(4)); err != nil {
		t.Fatalf("advancing revision rejected: %v", err)
	}
	if v.Revision() != 4 {
		t.Fatalf("Revision = %d", v.Revision())
	}
}

func TestUnknownFieldsRejected(t *testing.T) {
	_, raw, v := signedBundle(t, 1)
	smuggled := bytes.Replace(raw, []byte("{"), []byte(`{"rider":"payload",`), 1)
	if _, err := v.Admit(smuggled); err == nil {
		t.Fatal("bundle with unknown top-level field admitted")
	}
}

func TestKeyPairFiles(t *testing.T) {
	dir := t.TempDir()
	pub, priv, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	privPath := filepath.Join(dir, "bundle.key")
	pubPath := filepath.Join(dir, "bundle.pub")
	if err := WriteKeyPair(privPath, pubPath, pub, priv); err != nil {
		t.Fatal(err)
	}
	gotPriv, err := LoadPrivateKey(privPath)
	if err != nil {
		t.Fatal(err)
	}
	gotPub, err := LoadPublicKey(pubPath)
	if err != nil {
		t.Fatal(err)
	}
	if !gotPub.Equal(pub) || !gotPriv.Equal(priv) {
		t.Fatal("round-tripped keys differ")
	}
	// A bundle signed with the loaded private key verifies with the
	// loaded public key — the full grbacctl keygen→sign→verify path.
	b := Build(testState(t), 1, time.Now())
	if err := b.Sign(gotPriv, KeyID(gotPub)); err != nil {
		t.Fatal(err)
	}
	if err := b.Verify(gotPub); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestParsePublicKeyRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "zzzz", "deadbeef"} {
		if _, err := ParsePublicKey(bad); err == nil {
			t.Fatalf("ParsePublicKey(%q) accepted", bad)
		}
	}
}
