package pdp

import (
	"fmt"
	"net/http"
	"strings"

	"github.com/aware-home/grbac/internal/core"
)

// Administration wire types. The admin API turns the decision point into a
// policy administration point: remote applications (or the homeowner's UI)
// manage roles, entities, rules, and sessions over the same HTTP surface
// they mediate against. It is disabled unless the server is constructed
// with WithAdmin.

// RoleRequest creates or deletes a role.
type RoleRequest struct {
	ID      string   `json:"id"`
	Kind    string   `json:"kind"` // "subject" | "object" | "environment"
	Parents []string `json:"parents,omitempty"`
}

// BindingRequest registers a subject or object and assigns roles.
type BindingRequest struct {
	ID    string   `json:"id"`
	Roles []string `json:"roles,omitempty"`
}

// TransactionRequest declares a transaction.
type TransactionRequest struct {
	ID      string   `json:"id"`
	Actions []string `json:"actions,omitempty"`
}

// PermissionRequest installs or revokes a permission.
type PermissionRequest struct {
	Subject       string  `json:"subject"`
	Object        string  `json:"object"`
	Environment   string  `json:"environment"`
	Transaction   string  `json:"transaction"`
	Effect        string  `json:"effect"` // "permit" | "deny"
	MinConfidence float64 `json:"min_confidence,omitempty"`
	Description   string  `json:"description,omitempty"`
}

// SoDRequest installs a separation-of-duty constraint.
type SoDRequest struct {
	Name  string   `json:"name"`
	Kind  string   `json:"kind"` // "static" | "dynamic"
	Roles []string `json:"roles"`
}

// SessionRequest opens or closes a session.
type SessionRequest struct {
	Subject string `json:"subject,omitempty"`
	Session string `json:"session,omitempty"`
}

// SessionResponse carries a session ID.
type SessionResponse struct {
	Session string `json:"session"`
}

// SessionRoleRequest activates or deactivates a role in a session.
type SessionRoleRequest struct {
	Session string `json:"session"`
	Role    string `json:"role"`
	Active  bool   `json:"active"`
}

// WhoCanResponse lists the subjects a review query found.
type WhoCanResponse struct {
	Subjects []string `json:"subjects"`
}

// SubjectsInRoleResponse lists the subjects holding a subject role. On a
// shard the answer covers only that shard's subject partition; the router
// scatter-gathers and unions the per-shard answers.
type SubjectsInRoleResponse struct {
	Subjects []string `json:"subjects"`
}

// WhatCanResponse lists a subject's entitlements.
type WhatCanResponse struct {
	Entitlements []EntitlementWire `json:"entitlements"`
}

// EntitlementWire is the wire form of core.Entitlement.
type EntitlementWire struct {
	Object      string `json:"object"`
	Transaction string `json:"transaction"`
}

// WithAdmin enables the administration and session endpoints. Deployments
// exposing the PDP beyond a trusted network should front these with their
// own authentication layer.
func WithAdmin() ServerOption {
	return func(s *Server) { s.adminEnabled = true }
}

func (s *Server) registerAdmin(mux *http.ServeMux) {
	mux.HandleFunc("/v1/admin/roles", s.handleRoles)
	mux.HandleFunc("/v1/admin/subjects", s.handleSubjects)
	mux.HandleFunc("/v1/admin/objects", s.handleObjects)
	mux.HandleFunc("/v1/admin/transactions", s.handleTransactions)
	mux.HandleFunc("/v1/admin/permissions", s.handlePermissions)
	mux.HandleFunc("/v1/admin/sod", s.handleSoD)
	mux.HandleFunc("/v1/sessions", s.handleSessions)
	mux.HandleFunc("/v1/sessions/roles", s.handleSessionRoles)
	mux.HandleFunc("/v1/query/who-can", s.handleWhoCan)
	mux.HandleFunc("/v1/query/what-can", s.handleWhatCan)
	mux.HandleFunc("/v1/query/subjects-in-role", s.handleSubjectsInRole)
}

func parseRoleKind(kind string) (core.RoleKind, error) {
	switch kind {
	case "subject":
		return core.SubjectRole, nil
	case "object":
		return core.ObjectRole, nil
	case "environment":
		return core.EnvironmentRole, nil
	default:
		return 0, fmt.Errorf("%w: role kind %q", core.ErrInvalid, kind)
	}
}

func (s *Server) handleRoles(w http.ResponseWriter, r *http.Request) {
	var req RoleRequest
	if !s.readBody(w, r, &req, http.MethodPost, http.MethodDelete) {
		return
	}
	kind, err := parseRoleKind(req.Kind)
	if err != nil {
		s.writeError(w, err)
		return
	}
	switch r.Method {
	case http.MethodPost:
		role := core.Role{ID: core.RoleID(req.ID), Kind: kind}
		for _, p := range req.Parents {
			role.Parents = append(role.Parents, core.RoleID(p))
		}
		if err := s.sys.AddRole(role); err != nil {
			s.writeError(w, err)
			return
		}
	case http.MethodDelete:
		if err := s.sys.RemoveRole(kind, core.RoleID(req.ID)); err != nil {
			s.writeError(w, err)
			return
		}
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleSubjects(w http.ResponseWriter, r *http.Request) {
	var req BindingRequest
	if !s.readBody(w, r, &req, http.MethodPost) {
		return
	}
	if s.migrateIntercept(w, r, req.ID, "", req) {
		return
	}
	id := core.SubjectID(req.ID)
	if !s.sys.HasSubject(id) {
		if err := s.sys.AddSubject(id); err != nil {
			s.writeError(w, err)
			return
		}
	}
	for _, role := range req.Roles {
		if err := s.sys.AssignSubjectRole(id, core.RoleID(role)); err != nil {
			s.writeError(w, err)
			return
		}
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleObjects(w http.ResponseWriter, r *http.Request) {
	var req BindingRequest
	if !s.readBody(w, r, &req, http.MethodPost) {
		return
	}
	id := core.ObjectID(req.ID)
	if !s.sys.HasObject(id) {
		if err := s.sys.AddObject(id); err != nil {
			s.writeError(w, err)
			return
		}
	}
	for _, role := range req.Roles {
		if err := s.sys.AssignObjectRole(id, core.RoleID(role)); err != nil {
			s.writeError(w, err)
			return
		}
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleTransactions(w http.ResponseWriter, r *http.Request) {
	var req TransactionRequest
	if !s.readBody(w, r, &req, http.MethodPost) {
		return
	}
	tx := core.Transaction{ID: core.TransactionID(req.ID)}
	if len(req.Actions) == 0 {
		tx.Steps = []core.Access{{Action: core.Action(req.ID)}}
	} else {
		for _, a := range req.Actions {
			tx.Steps = append(tx.Steps, core.Access{Action: core.Action(a)})
		}
	}
	if err := s.sys.AddTransaction(tx); err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (req PermissionRequest) toCore() (core.Permission, error) {
	var effect core.Effect
	switch req.Effect {
	case "permit":
		effect = core.Permit
	case "deny":
		effect = core.Deny
	default:
		return core.Permission{}, fmt.Errorf("%w: effect %q", core.ErrInvalid, req.Effect)
	}
	return core.Permission{
		Subject:       core.RoleID(req.Subject),
		Object:        core.RoleID(req.Object),
		Environment:   core.RoleID(req.Environment),
		Transaction:   core.TransactionID(req.Transaction),
		Effect:        effect,
		MinConfidence: req.MinConfidence,
		Description:   req.Description,
	}, nil
}

func (s *Server) handlePermissions(w http.ResponseWriter, r *http.Request) {
	var req PermissionRequest
	if !s.readBody(w, r, &req, http.MethodPost, http.MethodDelete) {
		return
	}
	perm, err := req.toCore()
	if err != nil {
		s.writeError(w, err)
		return
	}
	if r.Method == http.MethodPost {
		err = s.sys.Grant(perm)
	} else {
		err = s.sys.Revoke(perm)
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleSoD(w http.ResponseWriter, r *http.Request) {
	var req SoDRequest
	if !s.readBody(w, r, &req, http.MethodPost) {
		return
	}
	var kind core.SoDKind
	switch req.Kind {
	case "static":
		kind = core.StaticSoD
	case "dynamic":
		kind = core.DynamicSoD
	default:
		s.writeError(w, fmt.Errorf("%w: sod kind %q", core.ErrInvalid, req.Kind))
		return
	}
	c := core.SoDConstraint{Name: req.Name, Kind: kind}
	for _, role := range req.Roles {
		c.Roles = append(c.Roles, core.RoleID(role))
	}
	if err := s.sys.AddSoDConstraint(c); err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	var req SessionRequest
	if !s.readBody(w, r, &req, http.MethodPost, http.MethodDelete) {
		return
	}
	if s.migrateIntercept(w, r, req.Subject, req.Session, req) {
		return
	}
	switch r.Method {
	case http.MethodPost:
		sid, err := s.sys.CreateSession(core.SubjectID(req.Subject))
		if err != nil {
			s.writeError(w, err)
			return
		}
		s.writeJSON(w, http.StatusOK, SessionResponse{Session: string(sid)})
	case http.MethodDelete:
		if err := s.sys.CloseSession(core.SessionID(req.Session)); err != nil {
			s.writeError(w, err)
			return
		}
		s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}
}

func (s *Server) handleSessionRoles(w http.ResponseWriter, r *http.Request) {
	var req SessionRoleRequest
	if !s.readBody(w, r, &req, http.MethodPost) {
		return
	}
	if s.migrateIntercept(w, r, "", req.Session, req) {
		return
	}
	var err error
	if req.Active {
		err = s.sys.ActivateRole(core.SessionID(req.Session), core.RoleID(req.Role))
	} else {
		err = s.sys.DeactivateRole(core.SessionID(req.Session), core.RoleID(req.Role))
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func splitEnv(raw string) []core.RoleID {
	if raw == "" {
		return []core.RoleID{}
	}
	parts := strings.Split(raw, ",")
	out := make([]core.RoleID, 0, len(parts))
	for _, p := range parts {
		if p != "" {
			out = append(out, core.RoleID(p))
		}
	}
	return out
}

func (s *Server) handleWhoCan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeStatus(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query()
	subjects, err := s.sys.WhoCan(
		core.TransactionID(q.Get("transaction")),
		core.ObjectID(q.Get("object")),
		splitEnv(q.Get("env")),
	)
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp := WhoCanResponse{Subjects: make([]string, 0, len(subjects))}
	for _, sub := range subjects {
		resp.Subjects = append(resp.Subjects, string(sub))
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSubjectsInRole(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeStatus(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	role := r.URL.Query().Get("role")
	if role == "" {
		s.writeError(w, fmt.Errorf("%w: missing role parameter", core.ErrInvalid))
		return
	}
	subjects := s.sys.SubjectsInRole(core.RoleID(role))
	resp := SubjectsInRoleResponse{Subjects: make([]string, 0, len(subjects))}
	for _, sub := range subjects {
		resp.Subjects = append(resp.Subjects, string(sub))
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleWhatCan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeStatus(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query()
	if s.migrateIntercept(w, r, q.Get("subject"), "", nil) {
		return
	}
	ents, err := s.sys.WhatCan(core.SubjectID(q.Get("subject")), splitEnv(q.Get("env")))
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp := WhatCanResponse{Entitlements: make([]EntitlementWire, 0, len(ents))}
	for _, e := range ents {
		resp.Entitlements = append(resp.Entitlements, EntitlementWire{
			Object: string(e.Object), Transaction: string(e.Transaction),
		})
	}
	s.writeJSON(w, http.StatusOK, resp)
}
