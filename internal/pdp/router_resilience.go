package pdp

import (
	"context"
	"sort"
	"sync"
	"time"

	"github.com/aware-home/grbac/internal/retry"
	"github.com/aware-home/grbac/internal/shard"
)

// Router resilience: background health probes feeding a per-shard
// suspect/down state machine, one bounded retry on idempotent reads,
// and optional request hedging on scatter paths after a latency
// quantile. All three are opt-in knobs on an otherwise unchanged hot
// path — with hedging off, the fan-out path pays one nil check.

// WithHealthProbes starts a background prober that checks every shard's
// /v1/healthz each interval, driving the suspect/down state machine and
// the grbac_shard_health gauge. /v1/healthz on the router then answers
// from probe state instead of probing inline. Stop with Router.Close.
func WithHealthProbes(interval time.Duration) RouterOption {
	return func(rt *Router) {
		if interval > 0 {
			rt.probeEvery = interval
		}
	}
}

// WithHedgedScatter turns on request hedging for scatter-gather reads:
// when a shard's call outlives its recent latency at quantile q (e.g.
// 0.95), the router launches one duplicate request and takes the first
// answer. Caps tail latency from a slow-but-alive shard at the cost of
// bounded duplicate read load.
func WithHedgedScatter(q float64) RouterOption {
	return func(rt *Router) {
		if q > 0 && q < 1 {
			rt.hedge = newHedger(q)
		}
	}
}

// WithReadRetryBackoff sets the base delay before the single retry of a
// failed idempotent read (jittered to 0.5x–1.5x; d <= 0 keeps the
// default).
func WithReadRetryBackoff(d time.Duration) RouterOption {
	return func(rt *Router) {
		if d > 0 {
			rt.retryBackoff = d
		}
	}
}

// retryRead runs one idempotent read with a single bounded retry: a
// transient failure (transport error, 5xx, 429) is retried once after a
// jittered backoff, anything else — including the caller's own deadline
// expiring — returns immediately. Reused across single-shard forwards
// and scatter fan-outs.
func retryRead[T any](rt *Router, ctx context.Context, shardID string, fn func(context.Context) (T, error)) (T, error) {
	v, err := fn(ctx)
	if err == nil || !transient(err) || ctx.Err() != nil {
		return v, err
	}
	rt.metrics.retry(shardID)
	t := time.NewTimer(retry.Jitter(rt.retryBackoff))
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
		return v, err
	}
	return fn(ctx)
}

// healthState is one shard's probed liveness.
type healthState int

const (
	healthOK      healthState = iota // last probe succeeded
	healthSuspect                    // 1..2 consecutive failures
	healthDown                       // >= downAfterFails consecutive failures
)

// downAfterFails is how many consecutive probe failures demote a shard
// from suspect to down. One blip marks suspect; only a sustained outage
// marks down.
const downAfterFails = 3

func (s healthState) String() string {
	switch s {
	case healthSuspect:
		return "suspect"
	case healthDown:
		return "unreachable"
	default:
		return "ok"
	}
}

// gaugeValue encodes the state for the grbac_shard_health gauge.
func (s healthState) gaugeValue() float64 {
	switch s {
	case healthSuspect:
		return 0.5
	case healthDown:
		return 0
	default:
		return 1
	}
}

// healthTracker holds the per-shard probe state machine. It survives
// map swaps for shards that remain, so a rebalance does not reset an
// ongoing outage's failure count.
type healthTracker struct {
	mu      sync.Mutex
	entries map[string]*healthEntry
}

type healthEntry struct {
	state healthState
	fails int
}

func newHealthTracker() *healthTracker {
	return &healthTracker{entries: make(map[string]*healthEntry)}
}

// observe folds one probe result into the state machine and returns the
// resulting state: success resets to ok, failures escalate suspect →
// down.
func (t *healthTracker) observe(id string, ok bool) healthState {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[id]
	if e == nil {
		e = &healthEntry{}
		t.entries[id] = e
	}
	if ok {
		e.state, e.fails = healthOK, 0
	} else {
		e.fails++
		if e.fails >= downAfterFails {
			e.state = healthDown
		} else {
			e.state = healthSuspect
		}
	}
	return e.state
}

// stateOf returns the last probed state (ok when never probed).
func (t *healthTracker) stateOf(id string) healthState {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e := t.entries[id]; e != nil {
		return e.state
	}
	return healthOK
}

// prune drops state for shards no longer in the map.
func (t *healthTracker) prune(m *shard.Map) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id := range t.entries {
		if _, ok := m.Get(id); !ok {
			delete(t.entries, id)
		}
	}
}

// prober is the background probe loop started when WithHealthProbes is
// set; it runs until Router.Close.
func (rt *Router) prober() {
	tick := time.NewTicker(rt.probeEvery)
	defer tick.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-tick.C:
			rt.probeOnce()
		}
	}
}

// probeOnce checks every shard in the current view concurrently under
// the fan-out bound and folds the results into the state machine and
// the health gauge.
func (rt *Router) probeOnce() {
	v := rt.view.Load()
	var wg sync.WaitGroup
	sem := make(chan struct{}, rt.fanout)
	for _, s := range v.m.Shards() {
		wg.Add(1)
		go func(s shard.Info) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			c, ok := v.client(s.ID)
			alive := false
			if ok {
				ctx, cancel := context.WithTimeout(context.Background(), rt.timeout)
				alive = c.Healthy(ctx)
				cancel()
			}
			state := rt.health.observe(s.ID, alive)
			rt.metrics.setHealth(s.ID, state.gaugeValue())
		}(s)
	}
	wg.Wait()
}

// hedger decides when a scatter call has run long enough to launch a
// duplicate: it keeps a small ring of recent per-shard latencies and
// hedges once a call outlives the configured quantile of that ring.
type hedger struct {
	quantile float64
	minDelay time.Duration
	mu       sync.Mutex
	rings    map[string]*latencyRing
}

// hedgeMinSamples is how many latency observations a shard needs before
// hedging kicks in — with fewer, the quantile is noise.
const hedgeMinSamples = 8

func newHedger(q float64) *hedger {
	return &hedger{
		quantile: q,
		minDelay: time.Millisecond,
		rings:    make(map[string]*latencyRing),
	}
}

func (h *hedger) ring(id string) *latencyRing {
	h.mu.Lock()
	defer h.mu.Unlock()
	r := h.rings[id]
	if r == nil {
		r = &latencyRing{}
		h.rings[id] = r
	}
	return r
}

func (h *hedger) observe(id string, d time.Duration) {
	h.ring(id).observe(d)
}

// delay returns how long to wait before hedging a call to the shard,
// clamped to [minDelay, max]. ok is false while the shard lacks enough
// samples.
func (h *hedger) delay(id string, max time.Duration) (time.Duration, bool) {
	d, ok := h.ring(id).quantile(h.quantile)
	if !ok {
		return 0, false
	}
	if d < h.minDelay {
		d = h.minDelay
	}
	if max > 0 && d > max {
		d = max
	}
	return d, true
}

// latencyRing is a fixed-size ring of recent call latencies.
type latencyRing struct {
	mu      sync.Mutex
	samples [64]time.Duration
	n       int // total observed, saturating at len(samples)
	idx     int
}

func (r *latencyRing) observe(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.samples[r.idx] = d
	r.idx = (r.idx + 1) % len(r.samples)
	if r.n < len(r.samples) {
		r.n++
	}
}

// quantile returns the q-quantile of the ring's contents; ok is false
// below hedgeMinSamples observations.
func (r *latencyRing) quantile(q float64) (time.Duration, bool) {
	r.mu.Lock()
	n := r.n
	if n < hedgeMinSamples {
		r.mu.Unlock()
		return 0, false
	}
	buf := make([]time.Duration, n)
	copy(buf, r.samples[:n])
	r.mu.Unlock()
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	i := int(float64(n-1) * q)
	return buf[i], true
}

// hedgedFetch runs one scatter call with optional hedging. With hedging
// off (the default) it is a single nil check around fn — the disabled
// path must stay allocation-free (benchguard pins it). With hedging on,
// a call that outlives the shard's latency quantile gets one duplicate
// in flight; the first success wins and the loser's result is dropped
// into the buffered channel, so no goroutine leaks past its context.
func hedgedFetch[T any](rt *Router, ctx context.Context, shardID string, fn func(context.Context) (T, error)) (T, error) {
	h := rt.hedge
	if h == nil {
		return fn(ctx)
	}
	start := time.Now()
	delay, ok := h.delay(shardID, rt.timeout/2)
	if !ok {
		v, err := fn(ctx)
		if err == nil {
			h.observe(shardID, time.Since(start))
		}
		return v, err
	}
	type result struct {
		v   T
		err error
	}
	ch := make(chan result, 2)
	launch := func() {
		go func() {
			t0 := time.Now()
			v, err := fn(ctx)
			if err == nil {
				h.observe(shardID, time.Since(t0))
			}
			ch <- result{v, err}
		}()
	}
	launch()
	launched := 1
	timer := time.NewTimer(delay)
	defer timer.Stop()
	var firstErr error
	got := 0
	for {
		select {
		case res := <-ch:
			got++
			if res.err == nil {
				return res.v, nil
			}
			if firstErr == nil {
				firstErr = res.err
			}
			if got == launched {
				var zero T
				return zero, firstErr
			}
		case <-timer.C:
			if launched == 1 {
				rt.metrics.hedged(shardID)
				launch()
				launched = 2
			}
		case <-ctx.Done():
			var zero T
			return zero, ctx.Err()
		}
	}
}
