package pdp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/aware-home/grbac/internal/bundle"
	"github.com/aware-home/grbac/internal/obs"
	"github.com/aware-home/grbac/internal/shard"
)

// Router is the sharded cluster's routing tier: a stateless HTTP front
// that forwards each request to the shard owning its subject (consistent
// hash over the versioned shard map) and scatter-gathers the requests
// that span subjects. It holds no policy and makes no decisions itself —
// every byte of mediation happens on the shards — so routers scale out
// independently and restart freely.
//
// Routing rules:
//   - Decide/Check/what-can: forwarded to the owner of the request's
//     subject. Session-scoped requests route by the shard qualifier the
//     router stamped into the session ID at creation.
//   - DecideBatch: split by owning shard, dispatched concurrently under
//     the fan-out bound, merged back in request order. A failed shard
//     fails only its own items (typed per-item errors), never the batch.
//   - Subject admin (/v1/admin/subjects) and sessions: owner shard;
//     session IDs come back qualified as "<shard>/<local-id>".
//   - Shared-policy admin (roles, objects, transactions, permissions,
//     sod): broadcast to every shard; any failure reports per-shard
//     typed errors (the shards that applied it stay applied — the
//     caller retries until the broadcast converges).
//   - who-can / subjects-in-role: scatter to every shard with bounded
//     fan-out and per-shard deadlines, union the answers. Strict by
//     default (a down shard fails the query — review answers must not
//     silently omit a partition); ?allow_partial=1 degrades to a 200
//     with the reachable union plus per-shard errors.
//
// During a rebalance, a shard that no longer owns a subject answers 421
// with the new owner's coordinates; the router follows the redirect once
// within the same request, so clients never observe the handoff.
type Router struct {
	mu    sync.Mutex // serializes SetMap and guards watch
	view  atomic.Pointer[routerView]
	watch chan struct{} // closed and replaced under mu on every map change

	mux      *http.ServeMux
	fanout   int
	timeout  time.Duration
	logger   *log.Logger
	mkClient func(addr string) *Client

	// Resilience knobs (see router_resilience.go).
	retryBackoff time.Duration
	probeEvery   time.Duration
	hedge        *hedger
	health       *healthTracker
	stop         chan struct{}
	stopOnce     sync.Once

	metrics *routerMetrics
	reg     *obs.Registry
	bundles *bundle.Verifier
}

// routerView is one immutable snapshot of the routing state: the shard
// map and the client table built for exactly that map. Handlers capture
// a view once per request, so a concurrent SetMap can never tear the
// map away from its clients mid-scatter — in-flight fan-outs drain
// against the table they started with.
type routerView struct {
	m       *shard.Map
	clients map[string]*Client
}

func (v *routerView) client(id string) (*Client, bool) {
	c, ok := v.clients[id]
	return c, ok
}

// DefaultRouterFanout bounds how many shard calls one scatter request
// may have in flight at once.
const DefaultRouterFanout = 8

// DefaultShardTimeout is the per-shard deadline for forwarded calls: a
// slow shard costs one deadline, not an unbounded hang.
const DefaultShardTimeout = 5 * time.Second

// DefaultReadRetryBackoff is the base backoff before the single retry of
// an idempotent read (jittered to 0.5x–1.5x).
const DefaultReadRetryBackoff = 25 * time.Millisecond

// ShardMapPath serves the router's current shard map, consumed by
// grbacctl and by SDK clients that route shard-direct.
const ShardMapPath = "/v1/shard/map"

// ShardMapWatchPath long-polls for shard map changes: the request parks
// until the map version exceeds ?after (or the wait expires), then
// returns the current wire map. Routers push rebalance commits to SDK
// clients through this edge so the fleet flips atomically.
const ShardMapWatchPath = "/v1/shard/map/watch"

// defaultMapWatchMaxWait caps how long one map watch may park. Below
// typical LB idle timeouts so parked watches don't die mid-flight.
const defaultMapWatchMaxWait = 25 * time.Second

// ErrStaleShardMap is returned by SetMap when the candidate map's
// version is not strictly newer than the active map's.
var ErrStaleShardMap = errors.New("pdp: shard map version not newer than active")

// RouterOption configures NewRouter.
type RouterOption func(*Router)

// WithRouterFanout bounds concurrent per-shard calls in scatter paths
// (broadcasts, queries, batch splits); n < 1 keeps the default.
func WithRouterFanout(n int) RouterOption {
	return func(rt *Router) {
		if n >= 1 {
			rt.fanout = n
		}
	}
}

// WithShardTimeout sets the per-shard call deadline (d <= 0 keeps the
// default). Scatter latency is bounded by this, not by the slowest
// unreachable shard's TCP timeout.
func WithShardTimeout(d time.Duration) RouterOption {
	return func(rt *Router) {
		if d > 0 {
			rt.timeout = d
		}
	}
}

// WithRouterLogger sets the router's logger (default log.Default()).
func WithRouterLogger(l *log.Logger) RouterOption {
	return func(rt *Router) { rt.logger = l }
}

// WithRouterMetrics exports grbac_shard_* metrics on reg and mounts
// GET /metrics on the router.
func WithRouterMetrics(reg *obs.Registry) RouterOption {
	return func(rt *Router) { rt.reg = reg }
}

// WithRouterClientFactory overrides how the router builds the per-shard
// client for an address — tests inject clients bound to httptest
// servers; production tunes retry/breaker policy.
func WithRouterClientFactory(mk func(addr string) *Client) RouterOption {
	return func(rt *Router) { rt.mkClient = mk }
}

// routerMetrics is nil-safe: a router without a registry skips counting.
type routerMetrics struct {
	routes  *obs.CounterVec
	errs    *obs.CounterVec
	scatter *obs.Histogram
	health  *obs.GaugeVec
	retries *obs.CounterVec
	hedges  *obs.CounterVec
}

func (m *routerMetrics) route(shardID string) {
	if m != nil {
		m.routes.With(shardID).Inc()
	}
}

func (m *routerMetrics) err(shardID string) {
	if m != nil {
		m.errs.With(shardID).Inc()
	}
}

func (m *routerMetrics) observeScatter(start time.Time) {
	if m != nil {
		m.scatter.ObserveSince(start)
	}
}

func (m *routerMetrics) retry(shardID string) {
	if m != nil {
		m.retries.With(shardID).Inc()
	}
}

func (m *routerMetrics) hedged(shardID string) {
	if m != nil {
		m.hedges.With(shardID).Inc()
	}
}

func (m *routerMetrics) setHealth(shardID string, v float64) {
	if m != nil {
		m.health.With(shardID).Set(v)
	}
}

// NewRouter builds a routing tier over the shard map.
func NewRouter(m *shard.Map, opts ...RouterOption) (*Router, error) {
	if m == nil || m.Len() == 0 {
		return nil, fmt.Errorf("pdp: router needs a non-empty shard map")
	}
	rt := &Router{
		fanout:       DefaultRouterFanout,
		timeout:      DefaultShardTimeout,
		retryBackoff: DefaultReadRetryBackoff,
		logger:       log.Default(),
		watch:        make(chan struct{}),
		stop:         make(chan struct{}),
		health:       newHealthTracker(),
	}
	for _, opt := range opts {
		opt(rt)
	}
	if rt.mkClient == nil {
		rt.mkClient = func(addr string) *Client { return NewClient(addr, nil) }
	}
	if rt.reg != nil {
		rt.metrics = &routerMetrics{
			routes: rt.reg.NewCounterVec("grbac_shard_route_total",
				"Requests forwarded to a shard.", "shard"),
			errs: rt.reg.NewCounterVec("grbac_shard_errors_total",
				"Forwarded requests that failed at a shard.", "shard"),
			scatter: rt.reg.NewHistogram("grbac_shard_fanout_seconds",
				"Latency of one scatter-gather fan-out across shards.",
				obs.DefLatencyBuckets),
			health: rt.reg.NewGaugeVec("grbac_shard_health",
				"Probed shard health: 1 healthy, 0.5 suspect, 0 down.", "shard"),
			retries: rt.reg.NewCounterVec("grbac_shard_retry_total",
				"Bounded retries of idempotent reads against a shard.", "shard"),
			hedges: rt.reg.NewCounterVec("grbac_shard_hedge_total",
				"Hedged second requests launched against a shard.", "shard"),
		}
		rt.reg.NewGaugeFunc("grbac_shard_map_version",
			"Version of the active shard map.",
			func() float64 { return float64(rt.Map().Version()) })
		rt.reg.NewGaugeFunc("grbac_shard_count",
			"Shards in the active map.",
			func() float64 { return float64(rt.Map().Len()) })
	}
	rt.install(m)

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/decide", rt.handleDecide)
	mux.HandleFunc("/v1/check", rt.handleCheck)
	mux.HandleFunc("/v1/decide/batch", rt.handleBatch)
	mux.HandleFunc("/v1/sessions", rt.handleSessions)
	mux.HandleFunc("/v1/sessions/roles", rt.handleSessionRoles)
	mux.HandleFunc("/v1/admin/subjects", rt.handleSubjectAdmin)
	for _, p := range []string{"/v1/admin/roles", "/v1/admin/objects",
		"/v1/admin/transactions", "/v1/admin/permissions", "/v1/admin/sod"} {
		mux.HandleFunc(p, rt.handleBroadcastAdmin)
	}
	mux.HandleFunc("/v1/query/who-can", rt.handleWhoCan)
	mux.HandleFunc("/v1/query/subjects-in-role", rt.handleSubjectsInRole)
	mux.HandleFunc("/v1/query/what-can", rt.handleWhatCan)
	mux.HandleFunc(ShardMapPath, rt.handleShardMap)
	mux.HandleFunc(ShardMapWatchPath, rt.handleShardMapWatch)
	mux.HandleFunc("/v1/healthz", rt.handleHealthz)
	mux.HandleFunc("/v1/statsz", rt.handleStatsz)
	if rt.bundles != nil {
		mux.HandleFunc(BundlePath, rt.handleBundlePush)
		mux.HandleFunc(BundleStatusPath, rt.handleBundleStatus)
	}
	if rt.reg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			_ = rt.reg.WritePrometheus(w)
		})
	}
	rt.mux = mux
	if rt.probeEvery > 0 {
		go rt.prober()
	}
	return rt, nil
}

// Close stops the router's background health prober (if any). Safe to
// call multiple times; in-flight requests are unaffected.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
}

// install swaps in a map and (re)builds the per-shard client table.
// Callers must hold rt.mu (or be the constructor, before the router is
// shared).
func (rt *Router) install(m *shard.Map) {
	clients := make(map[string]*Client, m.Len())
	prev := rt.view.Load()
	for _, s := range m.Shards() {
		// Reuse the existing client when the address is unchanged, so a map
		// bump does not drop warm connection pools or breaker state.
		if prev != nil {
			if p, ok := prev.m.Get(s.ID); ok && p.Addr == s.Addr {
				clients[s.ID] = prev.clients[s.ID]
				continue
			}
		}
		clients[s.ID] = rt.mkClient(s.Addr)
	}
	rt.view.Store(&routerView{m: m, clients: clients})
	rt.health.prune(m)
}

// SetMap atomically replaces the shard map and wakes every parked map
// watch. Only maps with a strictly higher version are accepted
// (ErrStaleShardMap otherwise), so concurrent updaters cannot roll the
// router back.
func (rt *Router) SetMap(m *shard.Map) error {
	if m == nil || m.Len() == 0 {
		return fmt.Errorf("pdp: refusing empty shard map")
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if cur := rt.view.Load(); cur != nil && m.Version() <= cur.m.Version() {
		return fmt.Errorf("%w: candidate %d, active %d",
			ErrStaleShardMap, m.Version(), cur.m.Version())
	}
	rt.install(m)
	close(rt.watch)
	rt.watch = make(chan struct{})
	return nil
}

// Map returns the active shard map.
func (rt *Router) Map() *shard.Map { return rt.view.Load().m }

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

// shardCtx derives the bounded per-shard call context.
func (rt *Router) shardCtx(r *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), rt.timeout)
}

// ShardErrorsResponse is the typed error body for routed and scattered
// requests: the failing shard(s) are named so callers and operators can
// tell a partition outage from a policy error. It decodes as a plain
// ErrorResponse too (the Error field), so existing clients keep working.
type ShardErrorsResponse struct {
	Error string `json:"error"`
	// Partial marks a 200 degraded reply: the result covers only the
	// shards absent from ShardErrors.
	Partial bool `json:"partial,omitempty"`
	// ShardErrors maps shard ID → failure for every shard that failed.
	ShardErrors map[string]string `json:"shard_errors,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// relayShardError maps one failed shard call onto the router's reply:
// shard-side HTTP statuses pass through (a 404 on the shard is a 404
// here), transport failures become 502 Bad Gateway.
func (rt *Router) relayShardError(w http.ResponseWriter, shardID string, err error) {
	rt.metrics.err(shardID)
	status := http.StatusBadGateway
	msg := err.Error()
	var re *RemoteError
	if errors.As(err, &re) {
		status = re.Status
		if re.Message != "" {
			msg = re.Message
		}
	}
	writeJSON(w, status, ShardErrorsResponse{
		Error:       fmt.Sprintf("shard %s: %s", shardID, msg),
		ShardErrors: map[string]string{shardID: msg},
	})
}

func readJSONBody(w http.ResponseWriter, r *http.Request, out any, methods ...string) bool {
	allowed := false
	for _, m := range methods {
		if r.Method == m {
			allowed = true
			break
		}
	}
	if !allowed {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "method not allowed"})
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(out); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "malformed request: " + err.Error()})
		return false
	}
	return true
}

// routeError is a routing failure with the HTTP status it should map
// to: 400 for requests that cannot name a shard at all, 404 for session
// qualifiers that name a shard the map doesn't have.
type routeError struct {
	status int
	msg    string
}

func (e *routeError) Error() string { return e.msg }

func writeRouteError(w http.ResponseWriter, e *routeError) {
	writeJSON(w, e.status, ErrorResponse{Error: e.msg})
}

// resolveSessionShard maps a shard-qualified session ID onto its owning
// shard and the shard-local ID. An ID with no qualifier at all is the
// caller's malformed request (400); an ID whose qualifier is empty
// ("/sid") or names a shard absent from the map refers to something
// that does not exist here (404) — it must never fall through to hash
// routing, which would silently ask an arbitrary shard.
func resolveSessionShard(m *shard.Map, qualified string) (shard.Info, string, *routeError) {
	if !strings.Contains(qualified, shard.SessionSep) {
		return shard.Info{}, "", &routeError{http.StatusBadRequest,
			fmt.Sprintf("session %q is not shard-qualified (want <shard>%s<id>)", qualified, shard.SessionSep)}
	}
	shardID, sid, ok := shard.SplitSession(qualified)
	if !ok {
		return shard.Info{}, "", &routeError{http.StatusNotFound,
			fmt.Sprintf("session %q has an empty shard qualifier", qualified)}
	}
	info, found := m.Get(shardID)
	if !found {
		return shard.Info{}, "", &routeError{http.StatusNotFound,
			fmt.Sprintf("session %q names unknown shard %q", qualified, shardID)}
	}
	return info, sid, nil
}

// route resolves the owning shard for a decision-style request: the
// session qualifier when a session is named (sessions live where they
// were created, surviving map changes), else the subject hash. It
// rewrites a qualified session ID to the shard-local form in place.
func route(v *routerView, req *DecideRequest) (shard.Info, *routeError) {
	if req.Session != "" {
		info, sid, rerr := resolveSessionShard(v.m, req.Session)
		if rerr != nil {
			return shard.Info{}, rerr
		}
		req.Session = sid
		return info, nil
	}
	if req.Subject == "" {
		return shard.Info{}, &routeError{http.StatusBadRequest,
			"request names neither subject nor session"}
	}
	return v.m.Owner(req.Subject), nil
}

// movedClient resolves the client to follow a 421 migration redirect
// with: the view's own client when the redirect names a shard we know
// at that address, else a fresh client for the redirect's address (the
// redirect can be ahead of our map during a rebalance).
func (rt *Router) movedClient(v *routerView, err error) (*Client, string, bool) {
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != http.StatusMisdirectedRequest || re.Moved == nil {
		return nil, "", false
	}
	mv := re.Moved
	if info, ok := v.m.Get(mv.Shard); ok && info.Addr == mv.Addr {
		if c, ok := v.client(mv.Shard); ok {
			return c, mv.Shard, true
		}
	}
	if mv.Addr == "" {
		return nil, "", false
	}
	return rt.mkClient(mv.Addr), mv.Shard, true
}

// callShard performs one single-shard call: bounded per-shard deadline,
// one jittered retry when the call is an idempotent read that failed
// transiently, and one follow of a 421 migration redirect. Returns the
// ID of the shard that ultimately answered, for error attribution.
func (rt *Router) callShard(r *http.Request, v *routerView, sh shard.Info, method, path string, in, out any, idempotent bool) (string, error) {
	c, ok := v.client(sh.ID)
	if !ok {
		c = rt.mkClient(sh.Addr)
	}
	rt.metrics.route(sh.ID)
	ctx, cancel := rt.shardCtx(r)
	defer cancel()
	var err error
	if idempotent {
		_, err = retryRead(rt, ctx, sh.ID, func(ctx context.Context) (struct{}, error) {
			return struct{}{}, c.Call(ctx, method, path, in, out)
		})
	} else {
		err = c.Call(ctx, method, path, in, out)
	}
	if mc, movedID, moved := rt.movedClient(v, err); moved {
		rt.metrics.route(movedID)
		return movedID, mc.Call(ctx, method, path, in, out)
	}
	return sh.ID, err
}

func (rt *Router) handleDecide(w http.ResponseWriter, r *http.Request) {
	var req DecideRequest
	if !readJSONBody(w, r, &req, http.MethodPost) {
		return
	}
	v := rt.view.Load()
	sh, rerr := route(v, &req)
	if rerr != nil {
		writeRouteError(w, rerr)
		return
	}
	var resp DecideResponse
	if id, err := rt.callShard(r, v, sh, http.MethodPost, "/v1/decide", req, &resp, true); err != nil {
		rt.relayShardError(w, id, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleCheck(w http.ResponseWriter, r *http.Request) {
	var req DecideRequest
	if !readJSONBody(w, r, &req, http.MethodPost) {
		return
	}
	v := rt.view.Load()
	sh, rerr := route(v, &req)
	if rerr != nil {
		writeRouteError(w, rerr)
		return
	}
	var resp CheckResponse
	if id, err := rt.callShard(r, v, sh, http.MethodPost, "/v1/check", req, &resp, true); err != nil {
		rt.relayShardError(w, id, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleBatch splits the batch by owning shard, dispatches the per-shard
// sub-batches concurrently under the fan-out bound, and merges results
// back into request order. Shard failures are per-item errors: the rest
// of the batch still answers.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchDecideRequest
	if !readJSONBody(w, r, &req, http.MethodPost) {
		return
	}
	if len(req.Requests) > maxBatchSize {
		writeJSON(w, http.StatusBadRequest,
			ErrorResponse{Error: fmt.Sprintf("batch of %d exceeds limit %d", len(req.Requests), maxBatchSize)})
		return
	}
	v := rt.view.Load()
	merged := make([]BatchItem, len(req.Requests))
	groups := make(map[string][]int) // shard ID → indices into req.Requests
	for i := range req.Requests {
		sh, rerr := route(v, &req.Requests[i])
		if rerr != nil {
			merged[i] = BatchItem{Error: rerr.msg}
			continue
		}
		groups[sh.ID] = append(groups[sh.ID], i)
	}

	start := time.Now()
	var wg sync.WaitGroup
	var mu sync.Mutex // guards merged + stale across shard goroutines
	stale := false
	sem := make(chan struct{}, rt.fanout)
	for shardID, idxs := range groups {
		wg.Add(1)
		go func(shardID string, idxs []int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sub := make([]DecideRequest, len(idxs))
			for j, i := range idxs {
				sub[j] = req.Requests[i]
			}
			c, ok := v.client(shardID)
			if !ok {
				rt.fillBatchError(merged, &mu, idxs, shardID, fmt.Errorf("shard %s: not in map", shardID))
				return
			}
			rt.metrics.route(shardID)
			ctx, cancel := rt.shardCtx(r)
			defer cancel()
			resp, err := hedgedFetch(rt, ctx, shardID, func(ctx context.Context) (BatchDecideResponse, error) {
				return retryRead(rt, ctx, shardID, func(ctx context.Context) (BatchDecideResponse, error) {
					return c.DecideBatch(ctx, sub)
				})
			})
			if err != nil {
				rt.fillBatchError(merged, &mu, idxs, shardID, err)
				return
			}
			mu.Lock()
			defer mu.Unlock()
			if resp.Stale {
				stale = true
			}
			for j, i := range idxs {
				if j < len(resp.Results) {
					merged[i] = resp.Results[j]
				} else {
					merged[i] = BatchItem{Error: fmt.Sprintf("shard %s: truncated batch reply", shardID)}
				}
			}
		}(shardID, idxs)
	}
	wg.Wait()
	rt.metrics.observeScatter(start)
	writeJSON(w, http.StatusOK, BatchDecideResponse{Results: merged, Stale: stale})
}

func (rt *Router) fillBatchError(merged []BatchItem, mu *sync.Mutex, idxs []int, shardID string, err error) {
	rt.metrics.err(shardID)
	msg := fmt.Sprintf("shard %s: %v", shardID, err)
	mu.Lock()
	defer mu.Unlock()
	for _, i := range idxs {
		merged[i] = BatchItem{Error: msg}
	}
}

func (rt *Router) handleSessions(w http.ResponseWriter, r *http.Request) {
	var req SessionRequest
	if !readJSONBody(w, r, &req, http.MethodPost, http.MethodDelete) {
		return
	}
	v := rt.view.Load()
	switch r.Method {
	case http.MethodPost:
		if req.Subject == "" {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "missing subject"})
			return
		}
		sh := v.m.Owner(req.Subject)
		var resp SessionResponse
		id, err := rt.callShard(r, v, sh, http.MethodPost, "/v1/sessions", req, &resp, false)
		if err != nil {
			rt.relayShardError(w, id, err)
			return
		}
		resp.Session = shard.QualifySession(id, resp.Session)
		writeJSON(w, http.StatusOK, resp)
	case http.MethodDelete:
		sh, sid, rerr := resolveSessionShard(v.m, req.Session)
		if rerr != nil {
			writeRouteError(w, rerr)
			return
		}
		req.Session = sid
		var out map[string]string
		if id, err := rt.callShard(r, v, sh, http.MethodDelete, "/v1/sessions", req, &out, false); err != nil {
			rt.relayShardError(w, id, err)
			return
		}
		writeJSON(w, http.StatusOK, out)
	}
}

func (rt *Router) handleSessionRoles(w http.ResponseWriter, r *http.Request) {
	var req SessionRoleRequest
	if !readJSONBody(w, r, &req, http.MethodPost) {
		return
	}
	v := rt.view.Load()
	sh, sid, rerr := resolveSessionShard(v.m, req.Session)
	if rerr != nil {
		writeRouteError(w, rerr)
		return
	}
	req.Session = sid
	var out map[string]string
	if id, err := rt.callShard(r, v, sh, http.MethodPost, "/v1/sessions/roles", req, &out, false); err != nil {
		rt.relayShardError(w, id, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// handleSubjectAdmin routes subject registration/role assignment to the
// shard that owns the subject.
func (rt *Router) handleSubjectAdmin(w http.ResponseWriter, r *http.Request) {
	var req BindingRequest
	if !readJSONBody(w, r, &req, http.MethodPost) {
		return
	}
	if req.ID == "" {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "missing subject id"})
		return
	}
	v := rt.view.Load()
	sh := v.m.Owner(req.ID)
	var out map[string]string
	if id, err := rt.callShard(r, v, sh, http.MethodPost, "/v1/admin/subjects", req, &out, false); err != nil {
		rt.relayShardError(w, id, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// handleBroadcastAdmin applies a shared-policy mutation on every shard.
// Shared policy (roles, objects, transactions, permissions, SoD) must be
// identical everywhere for per-shard decisions to be correct, so a
// partial broadcast is reported loudly with per-shard errors; shards
// that succeeded keep the mutation and the caller retries (the admin
// mutations are idempotent upserts or idempotent removals).
func (rt *Router) handleBroadcastAdmin(w http.ResponseWriter, r *http.Request) {
	var body json.RawMessage
	if !readJSONBody(w, r, &body, http.MethodPost, http.MethodDelete) {
		return
	}
	v := rt.view.Load()
	start := time.Now()
	errs := rt.broadcast(r, v, r.Method, r.URL.Path, body)
	rt.metrics.observeScatter(start)
	if len(errs) > 0 {
		writeJSON(w, http.StatusBadGateway, ShardErrorsResponse{
			Error:       fmt.Sprintf("broadcast %s %s failed on %d/%d shards", r.Method, r.URL.Path, len(errs), v.m.Len()),
			ShardErrors: errs,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// broadcast fans one call out to every shard in the view under the
// fan-out bound, returning per-shard error strings (empty when all
// succeeded).
func (rt *Router) broadcast(r *http.Request, v *routerView, method, path string, body json.RawMessage) map[string]string {
	shards := v.m.Shards()
	var wg sync.WaitGroup
	var mu sync.Mutex
	errs := make(map[string]string)
	sem := make(chan struct{}, rt.fanout)
	for _, s := range shards {
		wg.Add(1)
		go func(s shard.Info) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			c, ok := v.client(s.ID)
			if !ok {
				mu.Lock()
				errs[s.ID] = "not in client table"
				mu.Unlock()
				return
			}
			rt.metrics.route(s.ID)
			ctx, cancel := rt.shardCtx(r)
			defer cancel()
			if err := c.Call(ctx, method, path, body, nil); err != nil {
				rt.metrics.err(s.ID)
				mu.Lock()
				errs[s.ID] = err.Error()
				mu.Unlock()
			}
		}(s)
	}
	wg.Wait()
	return errs
}

// scatterStrings fans a per-shard string-list query out to every shard
// in the view and merges: the sorted union plus per-shard errors. Reads
// get one bounded retry on transient failure and, when hedging is on, a
// hedged second request after the shard's latency quantile.
func (rt *Router) scatterStrings(r *http.Request, v *routerView, fetch func(ctx context.Context, c *Client) ([]string, error)) (union []string, errs map[string]string) {
	shards := v.m.Shards()
	var wg sync.WaitGroup
	var mu sync.Mutex
	errs = make(map[string]string)
	seen := make(map[string]bool)
	sem := make(chan struct{}, rt.fanout)
	for _, s := range shards {
		wg.Add(1)
		go func(s shard.Info) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			c, ok := v.client(s.ID)
			if !ok {
				mu.Lock()
				errs[s.ID] = "not in client table"
				mu.Unlock()
				return
			}
			rt.metrics.route(s.ID)
			ctx, cancel := rt.shardCtx(r)
			defer cancel()
			items, err := hedgedFetch(rt, ctx, s.ID, func(ctx context.Context) ([]string, error) {
				return retryRead(rt, ctx, s.ID, func(ctx context.Context) ([]string, error) {
					return fetch(ctx, c)
				})
			})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				rt.metrics.err(s.ID)
				errs[s.ID] = err.Error()
				return
			}
			for _, it := range items {
				seen[it] = true
			}
		}(s)
	}
	wg.Wait()
	union = make([]string, 0, len(seen))
	for it := range seen {
		union = append(union, it)
	}
	sort.Strings(union)
	return union, errs
}

// writeScatterResult applies the strict/partial contract shared by the
// cross-subject queries.
func (rt *Router) writeScatterResult(w http.ResponseWriter, r *http.Request, v *routerView, what string, union []string, errs map[string]string, respond func(subjects []string, partial bool) any) {
	allowPartial := r.URL.Query().Get("allow_partial") == "1"
	switch {
	case len(errs) == 0:
		writeJSON(w, http.StatusOK, respond(union, false))
	case allowPartial && len(errs) < v.m.Len():
		resp := respond(union, true)
		writeJSON(w, http.StatusOK, resp)
	default:
		writeJSON(w, http.StatusBadGateway, ShardErrorsResponse{
			Error:       fmt.Sprintf("%s failed on %d/%d shards", what, len(errs), v.m.Len()),
			ShardErrors: errs,
		})
	}
}

// ScatterSubjectsResponse is the router's reply for cross-shard subject
// queries: the union, plus degradation markers under ?allow_partial=1.
type ScatterSubjectsResponse struct {
	Subjects []string `json:"subjects"`
	// Partial marks a degraded answer missing the shards in ShardErrors.
	Partial     bool              `json:"partial,omitempty"`
	ShardErrors map[string]string `json:"shard_errors,omitempty"`
}

func (rt *Router) handleWhoCan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "GET only"})
		return
	}
	q := r.URL.Query()
	transaction, object := q.Get("transaction"), q.Get("object")
	var env []string
	if raw := q.Get("env"); raw != "" {
		env = append(env, splitList(raw)...)
	}
	v := rt.view.Load()
	start := time.Now()
	union, errs := rt.scatterStrings(r, v, func(ctx context.Context, c *Client) ([]string, error) {
		return c.WhoCan(ctx, transaction, object, env)
	})
	rt.metrics.observeScatter(start)
	rt.writeScatterResult(w, r, v, "who-can scatter", union, errs, func(subjects []string, partial bool) any {
		out := ScatterSubjectsResponse{Subjects: subjects, Partial: partial}
		if partial {
			out.ShardErrors = errs
		}
		return out
	})
}

func (rt *Router) handleSubjectsInRole(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "GET only"})
		return
	}
	role := r.URL.Query().Get("role")
	if role == "" {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "missing role parameter"})
		return
	}
	v := rt.view.Load()
	start := time.Now()
	union, errs := rt.scatterStrings(r, v, func(ctx context.Context, c *Client) ([]string, error) {
		resp, err := c.SubjectsInRole(ctx, role)
		return resp.Subjects, err
	})
	rt.metrics.observeScatter(start)
	rt.writeScatterResult(w, r, v, "subjects-in-role scatter", union, errs, func(subjects []string, partial bool) any {
		out := ScatterSubjectsResponse{Subjects: subjects, Partial: partial}
		if partial {
			out.ShardErrors = errs
		}
		return out
	})
}

func (rt *Router) handleWhatCan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "GET only"})
		return
	}
	subject := r.URL.Query().Get("subject")
	if subject == "" {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "missing subject parameter"})
		return
	}
	v := rt.view.Load()
	sh := v.m.Owner(subject)
	var resp WhatCanResponse
	if id, err := rt.callShard(r, v, sh, http.MethodGet, "/v1/query/what-can?"+r.URL.RawQuery, nil, &resp, true); err != nil {
		rt.relayShardError(w, id, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleShardMap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "GET only"})
		return
	}
	writeJSON(w, http.StatusOK, rt.Map().Wire())
}

// handleShardMapWatch long-polls for a shard map newer than ?after=N:
// it parks until SetMap commits a newer version or the wait expires,
// then replies with the current wire map either way (the caller
// compares versions). ?wait=DUR shortens the park below the server cap.
func (rt *Router) handleShardMapWatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "GET only"})
		return
	}
	q := r.URL.Query()
	var after uint64
	if raw := q.Get("after"); raw != "" {
		n, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad after parameter: " + err.Error()})
			return
		}
		after = n
	}
	wait := defaultMapWatchMaxWait
	if raw := q.Get("wait"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d <= 0 {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad wait parameter"})
			return
		}
		if d < wait {
			wait = d
		}
	}
	// Keep the connection's write deadline ahead of the park so the
	// response can still be written after a full wait.
	rc := http.NewResponseController(w)
	_ = rc.SetWriteDeadline(time.Now().Add(wait + 10*time.Second))
	ctx, cancel := context.WithTimeout(r.Context(), wait)
	defer cancel()
	for {
		rt.mu.Lock()
		ch := rt.watch
		rt.mu.Unlock()
		wire := rt.Map().Wire()
		if wire.Version > after {
			writeJSON(w, http.StatusOK, wire)
			return
		}
		select {
		case <-ch:
		case <-ctx.Done():
			writeJSON(w, http.StatusOK, rt.Map().Wire())
			return
		}
	}
}

// RouterHealthResponse aggregates per-shard liveness.
type RouterHealthResponse struct {
	Status string            `json:"status"` // "ok" | "degraded"
	Shards map[string]string `json:"shards"` // shard ID → "ok" | "suspect" | "unreachable"
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	v := rt.view.Load()
	shards := v.m.Shards()
	resp := RouterHealthResponse{Status: "ok", Shards: make(map[string]string, len(shards))}
	if rt.probeEvery > 0 {
		// Background probes are running: answer from their state machine
		// instead of re-probing inline on every health check.
		for _, s := range shards {
			state := rt.health.stateOf(s.ID)
			resp.Shards[s.ID] = state.String()
			if state == healthDown {
				resp.Status = "degraded"
			}
		}
	} else {
		var wg sync.WaitGroup
		var mu sync.Mutex
		sem := make(chan struct{}, rt.fanout)
		for _, s := range shards {
			wg.Add(1)
			go func(s shard.Info) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				c, ok := v.client(s.ID)
				ctx, cancel := rt.shardCtx(r)
				defer cancel()
				state := "ok"
				if !ok || !c.Healthy(ctx) {
					state = "unreachable"
				}
				mu.Lock()
				resp.Shards[s.ID] = state
				if state != "ok" {
					resp.Status = "degraded"
				}
				mu.Unlock()
			}(s)
		}
		wg.Wait()
	}
	status := http.StatusOK
	if resp.Status != "ok" {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// RouterStatszResponse describes the routing tier.
type RouterStatszResponse struct {
	Mode            string       `json:"mode"` // always "router"
	ShardMapVersion uint64       `json:"shard_map_version"`
	VNodes          int          `json:"vnodes"`
	Fanout          int          `json:"fanout"`
	ShardTimeoutMS  int64        `json:"shard_timeout_ms"`
	ProbeIntervalMS int64        `json:"probe_interval_ms,omitempty"`
	HedgeQuantile   float64      `json:"hedge_quantile,omitempty"`
	Shards          []shard.Info `json:"shards"`
}

func (rt *Router) handleStatsz(w http.ResponseWriter, r *http.Request) {
	m := rt.Map()
	resp := RouterStatszResponse{
		Mode:            "router",
		ShardMapVersion: m.Version(),
		VNodes:          m.VNodes(),
		Fanout:          rt.fanout,
		ShardTimeoutMS:  rt.timeout.Milliseconds(),
		ProbeIntervalMS: rt.probeEvery.Milliseconds(),
		Shards:          m.Shards(),
	}
	if rt.hedge != nil {
		resp.HedgeQuantile = rt.hedge.quantile
	}
	writeJSON(w, http.StatusOK, resp)
}

// splitList splits a comma-separated query value, dropping empties.
func splitList(raw string) []string {
	var out []string
	cur := ""
	for _, ch := range raw {
		if ch == ',' {
			if cur != "" {
				out = append(out, cur)
			}
			cur = ""
			continue
		}
		cur += string(ch)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
