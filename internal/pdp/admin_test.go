package pdp

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"github.com/aware-home/grbac/internal/audit"
	"github.com/aware-home/grbac/internal/core"
)

func newAdminServer(t *testing.T) (*httptest.Server, *Client) {
	t.Helper()
	sys := core.NewSystem()
	srv := httptest.NewServer(NewServer(sys, WithAdmin()))
	t.Cleanup(srv.Close)
	return srv, NewClient(srv.URL, srv.Client())
}

// TestAdminBuildPolicyRemotely constructs the §5.1 policy entirely over
// the wire and then mediates against it.
func TestAdminBuildPolicyRemotely(t *testing.T) {
	_, client := newAdminServer(t)
	ctx := context.Background()

	steps := []error{
		client.CreateRole(ctx, RoleRequest{ID: "family-member", Kind: "subject"}),
		client.CreateRole(ctx, RoleRequest{ID: "child", Kind: "subject", Parents: []string{"family-member"}}),
		client.CreateRole(ctx, RoleRequest{ID: "entertainment-devices", Kind: "object"}),
		client.CreateRole(ctx, RoleRequest{ID: "weekday-free-time", Kind: "environment"}),
		client.UpsertSubject(ctx, BindingRequest{ID: "alice", Roles: []string{"child"}}),
		client.UpsertObject(ctx, BindingRequest{ID: "tv", Roles: []string{"entertainment-devices"}}),
		client.CreateTransaction(ctx, TransactionRequest{ID: "use"}),
		client.GrantPermission(ctx, PermissionRequest{
			Subject: "child", Object: "entertainment-devices",
			Environment: "weekday-free-time", Transaction: "use", Effect: "permit",
		}),
	}
	for i, err := range steps {
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}

	ok, err := client.Check(ctx, DecideRequest{
		Subject: "alice", Object: "tv", Transaction: "use",
		Environment: []string{"weekday-free-time"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("remotely built policy denied")
	}

	// Review queries over the wire.
	subjects, err := client.WhoCan(ctx, "use", "tv", []string{"weekday-free-time"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(subjects, []string{"alice"}) {
		t.Fatalf("WhoCan = %v", subjects)
	}
	ents, err := client.WhatCan(ctx, "alice", []string{"weekday-free-time"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Object != "tv" || ents[0].Transaction != "use" {
		t.Fatalf("WhatCan = %v", ents)
	}

	// Revoke over the wire flips the decision.
	if err := client.RevokePermission(ctx, PermissionRequest{
		Subject: "child", Object: "entertainment-devices",
		Environment: "weekday-free-time", Transaction: "use", Effect: "permit",
	}); err != nil {
		t.Fatal(err)
	}
	ok, err = client.Check(ctx, DecideRequest{
		Subject: "alice", Object: "tv", Transaction: "use",
		Environment: []string{"weekday-free-time"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("revoked permission still grants")
	}
	// Role deletion cascades.
	if err := client.DeleteRole(ctx, RoleRequest{ID: "child", Kind: "subject"}); err != nil {
		t.Fatal(err)
	}
}

func TestAdminSessionsOverWire(t *testing.T) {
	_, client := newAdminServer(t)
	ctx := context.Background()
	for _, err := range []error{
		client.CreateRole(ctx, RoleRequest{ID: "teller", Kind: "subject"}),
		client.CreateRole(ctx, RoleRequest{ID: "account-holder", Kind: "subject"}),
		client.UpsertSubject(ctx, BindingRequest{ID: "joe", Roles: []string{"teller", "account-holder"}}),
		client.AddSoD(ctx, SoDRequest{Name: "x", Kind: "dynamic", Roles: []string{"teller", "account-holder"}}),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	sid, err := client.OpenSession(ctx, "joe")
	if err != nil {
		t.Fatal(err)
	}
	if err := client.SetSessionRole(ctx, sid, "teller", true); err != nil {
		t.Fatal(err)
	}
	// Dynamic SoD enforced over the wire.
	err = client.SetSessionRole(ctx, sid, "account-holder", true)
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("simultaneous activation error = %v, want ErrRemote", err)
	}
	if err := client.SetSessionRole(ctx, sid, "teller", false); err != nil {
		t.Fatal(err)
	}
	if err := client.SetSessionRole(ctx, sid, "account-holder", true); err != nil {
		t.Fatal(err)
	}
	if err := client.CloseSession(ctx, sid); err != nil {
		t.Fatal(err)
	}
	if err := client.CloseSession(ctx, sid); !errors.Is(err, ErrRemote) {
		t.Fatalf("double close error = %v, want ErrRemote", err)
	}
}

func TestAdminValidationErrors(t *testing.T) {
	_, client := newAdminServer(t)
	ctx := context.Background()
	tests := []struct {
		name string
		call func() error
	}{
		{"bad role kind", func() error {
			return client.CreateRole(ctx, RoleRequest{ID: "x", Kind: "cosmic"})
		}},
		{"unknown parent", func() error {
			return client.CreateRole(ctx, RoleRequest{ID: "x", Kind: "subject", Parents: []string{"ghost"}})
		}},
		{"bad effect", func() error {
			return client.GrantPermission(ctx, PermissionRequest{
				Subject: "a", Object: "b", Environment: "c", Transaction: "t", Effect: "maybe",
			})
		}},
		{"bad sod kind", func() error {
			return client.AddSoD(ctx, SoDRequest{Name: "x", Kind: "soft", Roles: []string{"a", "b"}})
		}},
		{"unknown session subject", func() error {
			_, err := client.OpenSession(ctx, "ghost")
			return err
		}},
		{"unknown binding role", func() error {
			return client.UpsertSubject(ctx, BindingRequest{ID: "u", Roles: []string{"ghost"}})
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.call(); !errors.Is(err, ErrRemote) {
				t.Fatalf("error = %v, want ErrRemote", err)
			}
		})
	}
}

func TestAdminDisabledByDefault(t *testing.T) {
	srv, _ := newTestServer(t) // no WithAdmin
	resp, err := http.Post(srv.URL+"/v1/admin/roles", "application/json",
		nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("admin endpoint reachable without WithAdmin: status %d", resp.StatusCode)
	}
}

func TestAuditEndpoint(t *testing.T) {
	logger := audit.NewLogger()
	srv, _ := newTestServer(t, WithAuditLogger(logger))
	client := NewClient(srv.URL, srv.Client())
	ctx := context.Background()
	// 2 permits, 1 deny.
	for _, env := range [][]string{{"weekday-free-time"}, {"weekday-free-time"}, {}} {
		if _, err := client.Check(ctx, DecideRequest{
			Subject: "alice", Object: "tv", Transaction: "use", Environment: env,
		}); err != nil {
			t.Fatal(err)
		}
	}
	records, err := client.Audit(ctx, AuditQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("records = %d, want 3", len(records))
	}
	denies, err := client.Audit(ctx, AuditQuery{DeniesOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(denies) != 1 || denies[0].Allowed {
		t.Fatalf("denies = %v", denies)
	}
	limited, err := client.Audit(ctx, AuditQuery{Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != 2 || limited[0].Seq != 2 {
		t.Fatalf("limited = %v", limited)
	}
	bySubject, err := client.Audit(ctx, AuditQuery{Subject: "nobody"})
	if err != nil {
		t.Fatal(err)
	}
	if len(bySubject) != 0 {
		t.Fatalf("bySubject = %v", bySubject)
	}
	// Time bounds: everything in this test happened "now", so a window in
	// the past excludes all records and a since-the-epoch window keeps
	// them.
	past, err := client.Audit(ctx, AuditQuery{
		Until: time.Now().Add(-time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(past) != 0 {
		t.Fatalf("past window records = %d", len(past))
	}
	recent, err := client.Audit(ctx, AuditQuery{
		Since: time.Now().Add(-time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recent) != 3 {
		t.Fatalf("recent window records = %d", len(recent))
	}
	// Bad since parameter.
	resp0, err := http.Get(srv.URL + "/v1/audit?since=yesterday")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp0.Body.Close()
	if resp0.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad since status = %d", resp0.StatusCode)
	}
	// Bad limit.
	resp, err := http.Get(srv.URL + "/v1/audit?limit=-1")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit status = %d", resp.StatusCode)
	}
	// No logger: endpoint absent.
	plain, _ := newTestServer(t)
	resp, err = http.Get(plain.URL + "/v1/audit")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("audit without logger status = %d", resp.StatusCode)
	}
}

func TestAdminQueryMethodErrors(t *testing.T) {
	srv, _ := newAdminServer(t)
	resp, err := http.Post(srv.URL+"/v1/query/who-can", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST who-can status = %d", resp.StatusCode)
	}
}
