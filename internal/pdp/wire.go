// Package pdp exposes a GRBAC system as a networked policy decision point
// over HTTP/JSON, with a matching Go client. This is the deployment shape
// the paper's §1 envisions — "resources in the home and information about
// the residents ... will be remotely accessible" — applications anywhere in
// the connected home (or community) mediate their accesses against one
// policy engine.
//
// Endpoints:
//
//	POST /v1/decide           — full decision with explanation
//	POST /v1/decide/batch     — many decisions in one round trip, one policy snapshot
//	POST /v1/check            — boolean decision
//	GET  /v1/state            — policy snapshot (for backup/inspection)
//	GET  /v1/healthz          — liveness (503 "degraded" on a stale follower)
//	GET  /v1/statsz           — decision-cache + replication statistics
//	GET  /v1/replica/snapshot — generation-stamped policy export (WithReplicaSource)
//	GET  /v1/replica/watch    — long-poll on the policy generation (WithReplicaSource)
//	GET  /metrics             — Prometheus text exposition (WithMetrics)
//	GET  /v1/traces           — recent decision traces, newest first (WithTracer)
//
// A server built WithFollower serves decisions from a policy replicated
// off a primary (see internal/replica) and answers mutation endpoints
// with 307 redirects to that primary.
package pdp

import (
	"github.com/aware-home/grbac/internal/core"
)

// Credential is the wire form of core.Credential.
type Credential struct {
	Subject    string  `json:"subject,omitempty"`
	Role       string  `json:"role,omitempty"`
	Confidence float64 `json:"confidence"`
	Source     string  `json:"source,omitempty"`
}

// DecideRequest is the wire form of core.Request. A null (absent)
// environment asks the server to consult its live environment source; an
// explicit array (possibly empty) is used verbatim.
type DecideRequest struct {
	Subject     string       `json:"subject,omitempty"`
	Session     string       `json:"session,omitempty"`
	Object      string       `json:"object"`
	Transaction string       `json:"transaction"`
	Credentials []Credential `json:"credentials,omitempty"`
	Environment []string     `json:"environment,omitempty"`
}

// Match is the wire form of core.Match.
type Match struct {
	Effect          string  `json:"effect"`
	SubjectRole     string  `json:"subject_role"`
	ObjectRole      string  `json:"object_role"`
	EnvironmentRole string  `json:"environment_role"`
	Transaction     string  `json:"transaction"`
	Confidence      float64 `json:"confidence"`
}

// DecideResponse is the wire form of core.Decision. Stale is set only by
// follower PDPs whose replicated policy has exceeded the staleness bound:
// the decision is still served (graceful degradation), and the caller can
// decide whether a possibly-outdated policy answer is acceptable.
type DecideResponse struct {
	Allowed     bool    `json:"allowed"`
	Effect      string  `json:"effect"`
	DefaultDeny bool    `json:"default_deny"`
	Strategy    string  `json:"strategy"`
	Reason      string  `json:"reason"`
	Matches     []Match `json:"matches,omitempty"`
	Stale       bool    `json:"stale,omitempty"`
	// CorrelationID echoes the request's X-Correlation-ID (server-generated
	// when the caller sent none): the join key across this reply, the audit
	// record, and the decision trace.
	CorrelationID string `json:"correlation_id,omitempty"`
}

// CheckResponse is the reply to /v1/check. Stale marks decisions from a
// follower past its staleness bound.
type CheckResponse struct {
	Allowed bool `json:"allowed"`
	Stale   bool `json:"stale,omitempty"`
	// CorrelationID is the request's correlation join key (see DecideResponse).
	CorrelationID string `json:"correlation_id,omitempty"`
}

// BatchDecideRequest carries the requests for POST /v1/decide/batch.
type BatchDecideRequest struct {
	Requests []DecideRequest `json:"requests"`
}

// BatchItem is one entry of a batch reply: the decision, or the error
// string that request produced. Exactly one of the two is set.
type BatchItem struct {
	Decision *DecideResponse `json:"decision,omitempty"`
	Error    string          `json:"error,omitempty"`
}

// BatchDecideResponse answers a batch. Results aligns index-for-index
// with the request order, and every item was mediated against the same
// policy snapshot, so the reply is internally consistent even when the
// policy is mutating concurrently. Stale marks follower replies past the
// staleness bound.
type BatchDecideResponse struct {
	Results []BatchItem `json:"results"`
	Stale   bool        `json:"stale,omitempty"`
	// CorrelationID is the batch's correlation join key; every item's audit
	// record carries the same value (see DecideResponse).
	CorrelationID string `json:"correlation_id,omitempty"`
}

// ErrorResponse is the body of every non-2xx reply. Moved is set only on
// 421 replies for subjects that migrated to another shard (see MovedInfo).
type ErrorResponse struct {
	Error string     `json:"error"`
	Moved *MovedInfo `json:"moved,omitempty"`
}

// FromCoreRequest converts a core request into its wire form — the
// inverse of toCore — so in-process mediators (the embedded SDK) can fall
// back to a remote Decide without hand-building wire structs. The
// nil-vs-empty environment distinction is preserved: nil stays absent
// (the server consults its live environment source), an empty non-nil
// slice stays an explicit "no roles active".
func FromCoreRequest(req core.Request) DecideRequest {
	out := DecideRequest{
		Subject:     string(req.Subject),
		Session:     string(req.Session),
		Object:      string(req.Object),
		Transaction: string(req.Transaction),
	}
	for _, c := range req.Credentials {
		out.Credentials = append(out.Credentials, Credential{
			Subject:    string(c.Subject),
			Role:       string(c.Role),
			Confidence: c.Confidence,
			Source:     c.Source,
		})
	}
	if req.Environment != nil {
		out.Environment = make([]string, 0, len(req.Environment))
		for _, e := range req.Environment {
			out.Environment = append(out.Environment, string(e))
		}
	}
	return out
}

// ToCore converts a wire decision back into core form for callers that
// mix remote and in-process mediation. The wire carries less than a core
// decision (matches lose their full Permission, role sets are not sent),
// so the reconstruction is partial: outcome, strategy, reason, and the
// match triples survive.
func (r DecideResponse) ToCore() core.Decision {
	d := core.Decision{
		Allowed:     r.Allowed,
		Effect:      effectFromString(r.Effect),
		DefaultDeny: r.DefaultDeny,
		Strategy:    r.Strategy,
		Reason:      r.Reason,
	}
	for _, m := range r.Matches {
		d.Matches = append(d.Matches, core.Match{
			Permission: core.Permission{
				Subject:     core.RoleID(m.SubjectRole),
				Object:      core.RoleID(m.ObjectRole),
				Environment: core.RoleID(m.EnvironmentRole),
				Transaction: core.TransactionID(m.Transaction),
				Effect:      effectFromString(m.Effect),
			},
			SubjectRole:     core.RoleID(m.SubjectRole),
			ObjectRole:      core.RoleID(m.ObjectRole),
			EnvironmentRole: core.RoleID(m.EnvironmentRole),
			Confidence:      m.Confidence,
		})
	}
	return d
}

// effectFromString parses the wire effect; anything unrecognized reads as
// Deny, the closed-world default.
func effectFromString(s string) core.Effect {
	if s == core.Permit.String() {
		return core.Permit
	}
	return core.Deny
}

// toCore converts a wire request into a core request.
func (r DecideRequest) toCore() core.Request {
	req := core.Request{
		Subject:     core.SubjectID(r.Subject),
		Session:     core.SessionID(r.Session),
		Object:      core.ObjectID(r.Object),
		Transaction: core.TransactionID(r.Transaction),
	}
	for _, c := range r.Credentials {
		req.Credentials = append(req.Credentials, core.Credential{
			Subject:    core.SubjectID(c.Subject),
			Role:       core.RoleID(c.Role),
			Confidence: c.Confidence,
			Source:     c.Source,
		})
	}
	if r.Environment != nil {
		req.Environment = make([]core.RoleID, 0, len(r.Environment))
		for _, e := range r.Environment {
			req.Environment = append(req.Environment, core.RoleID(e))
		}
	}
	return req
}

// fromDecision converts a core decision into its wire form.
func fromDecision(d core.Decision) DecideResponse {
	resp := DecideResponse{
		Allowed:     d.Allowed,
		Effect:      d.Effect.String(),
		DefaultDeny: d.DefaultDeny,
		Strategy:    d.Strategy,
		Reason:      d.Reason,
	}
	for _, m := range d.Matches {
		resp.Matches = append(resp.Matches, Match{
			Effect:          m.Permission.Effect.String(),
			SubjectRole:     string(m.SubjectRole),
			ObjectRole:      string(m.ObjectRole),
			EnvironmentRole: string(m.EnvironmentRole),
			Transaction:     string(m.Permission.Transaction),
			Confidence:      m.Confidence,
		})
	}
	return resp
}
