package pdp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/aware-home/grbac/internal/core"
	"github.com/aware-home/grbac/internal/policy"
	"github.com/aware-home/grbac/internal/shard"
)

// newShardServer builds one standalone shard: a full admin-enabled PDP
// over a fresh system with the shared policy applied.
func newShardServer(t *testing.T) (*core.System, *httptest.Server) {
	t.Helper()
	compiled, err := policy.Compile(sharedPolicy)
	if err != nil {
		t.Fatal(err)
	}
	sys := core.NewSystem()
	if err := compiled.Apply(sys, nil); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(sys, WithAdmin()))
	t.Cleanup(srv.Close)
	return sys, srv
}

// TestMigrationForwardAndRedirect drives one subject through the
// shard-side migration protocol by hand and pins both halves of the
// dual-ownership window: after handoff the old owner transparently
// proxies subject- and session-scoped requests to the new owner; after
// complete it answers with the typed 421 carrying the new coordinates.
func TestMigrationForwardAndRedirect(t *testing.T) {
	ctx := context.Background()
	_, oldSrv := newShardServer(t)
	newSys, newSrv := newShardServer(t)
	oldC := NewClient(oldSrv.URL, nil)

	for _, sub := range []string{"alice", "bob"} {
		if err := oldC.UpsertSubject(ctx, BindingRequest{ID: sub, Roles: []string{"child"}}); err != nil {
			t.Fatal(err)
		}
	}
	var sess SessionResponse
	if err := oldC.Call(ctx, http.MethodPost, "/v1/sessions", SessionRequest{Subject: "alice"}, &sess); err != nil {
		t.Fatal(err)
	}
	if err := oldC.Call(ctx, http.MethodPost, "/v1/sessions/roles", SessionRoleRequest{Session: sess.Session, Role: "child", Active: true}, nil); err != nil {
		t.Fatal(err)
	}

	// Copy alice (record, roles, session) to the new owner, then open the
	// handoff window on the old one.
	node := NewMigrationNode(oldSrv.URL)
	bundle, err := node.ExportSubject(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := NewMigrationNode(newSrv.URL).ImportSubject(ctx, bundle); err != nil {
		t.Fatal(err)
	}
	move := []shard.Move{{Subject: "alice", To: shard.Info{ID: "new", Addr: newSrv.URL}}}
	if err := node.Handoff(ctx, 2, move); err != nil {
		t.Fatal(err)
	}

	// Forward mode: the old owner answers for alice by proxying.
	resp, err := oldC.Decide(ctx, permitReq("alice"))
	if err != nil || !resp.Allowed {
		t.Fatalf("forwarded Decide(alice) = %+v, %v; want permit", resp, err)
	}
	if allowed, err := oldC.Check(ctx, DecideRequest{Subject: "alice", Session: sess.Session, Object: "tv", Transaction: "use", Environment: []string{"weekday-free-time"}}); err != nil || !allowed {
		t.Fatalf("forwarded session Check = %v, %v; want permit", allowed, err)
	}
	// A batch mixing a moved and a resident subject splits: alice's item
	// is mediated on the new owner, bob's locally.
	batch, err := oldC.DecideBatch(ctx, []DecideRequest{permitReq("alice"), permitReq("bob")})
	if err != nil {
		t.Fatal(err)
	}
	for i, item := range batch.Results {
		if item.Error != "" || item.Decision == nil || !item.Decision.Allowed {
			t.Fatalf("batch item %d during handoff = %+v, want permit", i, item)
		}
	}

	// Complete: the local copy is dropped and callers get the typed 421.
	if err := node.Complete(ctx, 2, move); err != nil {
		t.Fatal(err)
	}
	_, err = oldC.Decide(ctx, permitReq("alice"))
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != http.StatusMisdirectedRequest || re.Moved == nil {
		t.Fatalf("post-complete Decide(alice) = %v, want 421 with Moved", err)
	}
	if re.Moved.Shard != "new" || re.Moved.Addr != newSrv.URL || re.Moved.MapVersion != 2 {
		t.Fatalf("Moved = %+v, want shard new @ %s v2", re.Moved, newSrv.URL)
	}
	// Session-scoped calls resolve through the captured session index even
	// when the request names no subject at routing time.
	_, err = oldC.Check(ctx, DecideRequest{Session: sess.Session, Object: "tv", Transaction: "use"})
	if !errors.As(err, &re) || re.Status != http.StatusMisdirectedRequest {
		t.Fatalf("post-complete session Check = %v, want 421", err)
	}
	// bob never moved and still answers locally.
	if resp, err := oldC.Decide(ctx, permitReq("bob")); err != nil || !resp.Allowed {
		t.Fatalf("Decide(bob) = %+v, %v; want permit", resp, err)
	}
	// The new owner carries alice's session under its original ID.
	if _, err := newSys.Session(core.SessionID(sess.Session)); err != nil {
		t.Fatalf("session %q missing on new owner: %v", sess.Session, err)
	}
}

// TestRebalanceEndToEnd is the tentpole integration: a live 2-shard
// cluster under continuous decide load grows to 3 shards through the
// coordinator. Not one decide may fail during the migration, the router
// must converge to the committed map version, and the post-state must
// be balanced (every shard holds exactly the subjects the new map
// assigns it).
func TestRebalanceEndToEnd(t *testing.T) {
	c := newRouterCluster(t, 2)
	subs := c.addSubjects(t, 32)
	ctx := context.Background()

	// Sessions created before the rebalance must survive it, including
	// for subjects that move.
	sessions := make(map[string]string)
	for _, sub := range subs[:8] {
		var sess SessionResponse
		if err := c.client.Call(ctx, http.MethodPost, "/v1/sessions", SessionRequest{Subject: sub}, &sess); err != nil {
			t.Fatal(err)
		}
		if err := c.client.Call(ctx, http.MethodPost, "/v1/sessions/roles", SessionRoleRequest{Session: sess.Session, Role: "child", Active: true}, nil); err != nil {
			t.Fatal(err)
		}
		sessions[sub] = sess.Session
	}

	// Third shard joins empty.
	newSys, newSrv := newShardServer(t)
	grow := shard.Info{ID: "s2", Addr: newSrv.URL}

	// Continuous load during the migration: every subject decides in a
	// loop; any error is a failed decide the handoff window leaked.
	var (
		stop     = make(chan struct{})
		decides  atomic.Int64
		failures atomic.Int64
		firstErr atomic.Value
	)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sub := subs[(i*4+w)%len(subs)]
				resp, err := c.client.Decide(ctx, permitReq(sub))
				decides.Add(1)
				if err != nil || !resp.Allowed {
					failures.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Errorf("Decide(%s) = %+v, %v", sub, resp, err))
				}
			}
		}(w)
	}

	coord := shard.NewCoordinator(
		filepath.Join(t.TempDir(), "rebalance.journal"),
		func(info shard.Info) shard.NodeClient { return NewMigrationNode(info.Addr) },
		func(_ context.Context, m *shard.Map) error { return c.rt.SetMap(m) },
		t.Logf,
	)
	next, err := coord.AddShard(ctx, c.m, grow)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("AddShard: %v", err)
	}

	if failures.Load() > 0 {
		t.Fatalf("%d/%d decides failed during rebalance; first: %v",
			failures.Load(), decides.Load(), firstErr.Load())
	}
	if decides.Load() == 0 {
		t.Fatal("load loop made no decides")
	}
	if got := c.rt.Map().Version(); got != next.Version() {
		t.Fatalf("router map v%d, want committed v%d", got, next.Version())
	}

	// Balanced post-state: each shard's core holds exactly the subjects
	// the committed map assigns it.
	systems := map[string]*core.System{"s0": c.sys["s0"], "s1": c.sys["s1"], "s2": newSys}
	moved := 0
	for _, sub := range subs {
		owner := next.Owner(sub).ID
		if c.m.Owner(sub).ID != owner {
			moved++
		}
		for id, sys := range systems {
			_, err := sys.ExportSubject(core.SubjectID(sub))
			if resident := err == nil; resident != (id == owner) {
				t.Fatalf("subject %s on shard %s: resident=%v, owner=%s", sub, id, resident, owner)
			}
		}
	}
	if moved == 0 {
		t.Fatal("rebalance moved nothing — grow the subject set")
	}
	t.Logf("rebalance moved %d/%d subjects under %d decides", moved, len(subs), decides.Load())

	// Every subject still decides through the router on the new map.
	for _, sub := range subs {
		resp, err := c.client.Decide(ctx, permitReq(sub))
		if err != nil || !resp.Allowed {
			t.Fatalf("post-rebalance Decide(%s) = %+v, %v", sub, resp, err)
		}
	}
	// Session-scoped decides survive the move: their qualifier still
	// names the old shard, whose 421 the router follows transparently.
	for sub, sess := range sessions {
		allowed, err := c.client.Check(ctx, DecideRequest{
			Subject: sub, Session: sess, Object: "tv", Transaction: "use",
			Environment: []string{"weekday-free-time"},
		})
		if err != nil || !allowed {
			t.Fatalf("post-rebalance session Check(%s via %s) = %v, %v", sub, sess, allowed, err)
		}
	}
}

// TestShardMapWatch pins the live map push: a watch at the current
// version parks until SetMap commits a newer map, then returns it; a
// stale `after` returns immediately; an expiring wait returns the
// current map unchanged.
func TestShardMapWatch(t *testing.T) {
	c := newRouterCluster(t, 2)

	get := func(query string) shard.Wire {
		t.Helper()
		resp, err := http.Get(c.front.URL + ShardMapWatchPath + "?" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("watch %q = %d", query, resp.StatusCode)
		}
		var w shard.Wire
		if err := json.NewDecoder(resp.Body).Decode(&w); err != nil {
			t.Fatal(err)
		}
		return w
	}

	// Stale after: immediate reply with the current map.
	start := time.Now()
	if w := get("after=0"); w.Version != c.m.Version() {
		t.Fatalf("watch(after=0) = v%d, want v%d", w.Version, c.m.Version())
	}
	if time.Since(start) > time.Second {
		t.Fatal("stale watch did not return immediately")
	}

	// Expiring wait: current map comes back after the timeout.
	start = time.Now()
	if w := get(fmt.Sprintf("after=%d&wait=100ms", c.m.Version())); w.Version != c.m.Version() {
		t.Fatalf("timed-out watch = v%d, want current v%d", w.Version, c.m.Version())
	}
	if d := time.Since(start); d < 80*time.Millisecond || d > 2*time.Second {
		t.Fatalf("timed-out watch took %v, want ~100ms", d)
	}

	// Parked watch wakes on SetMap.
	grown, err := c.m.Add(shard.Info{ID: "s9", Addr: c.shards["s0"].URL})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan shard.Wire, 1)
	go func() { done <- get(fmt.Sprintf("after=%d&wait=10s", c.m.Version())) }()
	time.Sleep(100 * time.Millisecond) // let the watch park
	if err := c.rt.SetMap(grown); err != nil {
		t.Fatal(err)
	}
	select {
	case w := <-done:
		if w.Version != grown.Version() || len(w.Shards) != 3 {
			t.Fatalf("woken watch = v%d/%d shards, want v%d/3", w.Version, len(w.Shards), grown.Version())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch did not wake on SetMap")
	}

	// Bad parameters are 400s.
	for _, q := range []string{"after=notanumber", "wait=bogus", "wait=-1s"} {
		resp, err := http.Get(c.front.URL + ShardMapWatchPath + "?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("watch %q = %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestSetMapStaleTyped pins the typed stale-map error.
func TestSetMapStaleTyped(t *testing.T) {
	c := newRouterCluster(t, 2)
	if err := c.rt.SetMap(c.m); !errors.Is(err, ErrStaleShardMap) {
		t.Fatalf("SetMap(active version) = %v, want ErrStaleShardMap", err)
	}
}

// TestRouterMidScatterMapSwap pins satellite invariant: a SetMap while
// a scatter is in flight must not tear the fan-out — the in-flight
// request drains against the client table it started with (including
// shards the new map dropped), and no goroutines leak.
func TestRouterMidScatterMapSwap(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(release) })
	mkShard := func(subject string, slow bool) *httptest.Server {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if slow {
				<-release
			}
			writeJSON(w, http.StatusOK, SubjectsInRoleResponse{Subjects: []string{subject}})
		}))
		t.Cleanup(srv.Close)
		return srv
	}
	fast := mkShard("fast-subject", false)
	slow := mkShard("slow-subject", true)
	m, err := shard.New(0,
		shard.Info{ID: "fast", Addr: fast.URL},
		shard.Info{ID: "slow", Addr: slow.URL},
	)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRouter(m, WithShardTimeout(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)

	before := runtime.NumGoroutine()
	type result struct {
		out ScatterSubjectsResponse
		err error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get(front.URL + "/v1/query/subjects-in-role?role=child")
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var out ScatterSubjectsResponse
		done <- result{out: out, err: json.NewDecoder(resp.Body).Decode(&out)}
	}()

	// While the scatter hangs on the slow shard, swap in a map without it.
	time.Sleep(100 * time.Millisecond)
	shrunk, err := m.Remove("slow")
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.SetMap(shrunk); err != nil {
		t.Fatal(err)
	}
	once.Do(func() { close(release) })

	select {
	case res := <-done:
		if res.err != nil {
			t.Fatalf("mid-swap scatter failed: %v", res.err)
		}
		// Both shards answered: the fan-out drained against the map and
		// client table it captured, not the swapped one.
		got := map[string]bool{}
		for _, s := range res.out.Subjects {
			got[s] = true
		}
		if !got["fast-subject"] || !got["slow-subject"] {
			t.Fatalf("mid-swap scatter = %v, want both shards' answers", res.out.Subjects)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("mid-swap scatter never completed")
	}

	// Drop keep-alive connection pools so only a true leak (a stuck
	// fan-out goroutine) keeps the count elevated.
	fast.CloseClientConnections()
	slow.CloseClientConnections()
	front.CloseClientConnections()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+4 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines grew %d → %d after mid-swap scatter", before, runtime.NumGoroutine())
}

// TestRouterRetriesTransientReads pins the bounded read retry: a shard
// that fails one decide with a 503 answers on the router's single
// retry, invisibly to the caller; a second consecutive failure
// surfaces.
func TestRouterRetriesTransientReads(t *testing.T) {
	var calls atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1)%2 == 1 {
			writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "transient blip"})
			return
		}
		writeJSON(w, http.StatusOK, DecideResponse{Allowed: true, Effect: "permit"})
	}))
	t.Cleanup(flaky.Close)
	m, err := shard.New(0, shard.Info{ID: "s0", Addr: flaky.URL})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRouter(m, WithReadRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)

	resp, err := NewClient(front.URL, nil).Decide(context.Background(), permitReq("alice"))
	if err != nil || !resp.Allowed {
		t.Fatalf("Decide through flaky shard = %+v, %v; want permit via retry", resp, err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("shard saw %d calls, want 2 (original + one retry)", n)
	}
}

// TestRouterHealthProbes pins the probe state machine: a dead shard
// degrades to suspect after one failed probe and to down (unreachable)
// after three, and /v1/healthz answers from probe state.
func TestRouterHealthProbes(t *testing.T) {
	c := newRouterCluster(t, 2, WithHealthProbes(20*time.Millisecond))
	t.Cleanup(c.rt.Close)

	// Both shards healthy: probes mark everything ok.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if c.rt.health.stateOf("s0") == healthOK && c.rt.health.stateOf("s1") == healthOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("probes never marked healthy shards ok")
		}
		time.Sleep(10 * time.Millisecond)
	}

	c.shards["s1"].Close()
	for state := healthOK; state != healthDown; state = c.rt.health.stateOf("s1") {
		if time.Now().After(deadline) {
			t.Fatalf("dead shard stuck in state %v, want down", c.rt.health.stateOf("s1"))
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(c.front.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health RouterHealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || health.Status != "degraded" {
		t.Fatalf("healthz = %d %q, want 503 degraded", resp.StatusCode, health.Status)
	}
	if health.Shards["s1"] != "unreachable" || health.Shards["s0"] != "ok" {
		t.Fatalf("healthz shards = %v, want s1 unreachable, s0 ok", health.Shards)
	}
}

// TestHedgedFetch pins the hedging mechanics: with a seeded latency
// ring, a call that outlives the quantile gets one duplicate and the
// first answer wins.
func TestHedgedFetch(t *testing.T) {
	rt := &Router{timeout: 5 * time.Second, hedge: newHedger(0.9)}
	for i := 0; i < 16; i++ {
		rt.hedge.observe("s0", time.Millisecond)
	}
	var calls atomic.Int64
	start := time.Now()
	got, err := hedgedFetch(rt, context.Background(), "s0", func(ctx context.Context) (string, error) {
		if calls.Add(1) == 1 {
			// The primary stalls well past the ~1ms hedge delay.
			select {
			case <-time.After(2 * time.Second):
			case <-ctx.Done():
			}
			return "primary", nil
		}
		return "hedge", nil
	})
	if err != nil || got != "hedge" {
		t.Fatalf("hedgedFetch = %q, %v; want hedge to win", got, err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("hedged call took %v — hedge never fired", d)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("fn called %d times, want 2", n)
	}

	// An erroring primary falls back to the hedge's answer too.
	calls.Store(0)
	got, err = hedgedFetch(rt, context.Background(), "s0", func(ctx context.Context) (string, error) {
		if calls.Add(1) == 1 {
			time.Sleep(20 * time.Millisecond)
			return "", errors.New("primary died")
		}
		return "hedge", nil
	})
	if err != nil || got != "hedge" {
		t.Fatalf("hedgedFetch with failing primary = %q, %v; want hedge", got, err)
	}

	// Both failing: the first error surfaces.
	if _, err := hedgedFetch(rt, context.Background(), "s0", func(ctx context.Context) (string, error) {
		time.Sleep(5 * time.Millisecond)
		return "", errors.New("boom")
	}); err == nil {
		t.Fatal("hedgedFetch with two failures returned nil error")
	}
}

// TestHedgerWarmup pins that hedging stays off until a shard has enough
// latency samples for the quantile to mean something.
func TestHedgerWarmup(t *testing.T) {
	h := newHedger(0.95)
	if _, ok := h.delay("s0", time.Second); ok {
		t.Fatal("hedger armed with zero samples")
	}
	for i := 0; i < hedgeMinSamples-1; i++ {
		h.observe("s0", time.Millisecond)
	}
	if _, ok := h.delay("s0", time.Second); ok {
		t.Fatal("hedger armed below the sample floor")
	}
	h.observe("s0", time.Millisecond)
	d, ok := h.delay("s0", time.Second)
	if !ok || d < time.Millisecond {
		t.Fatalf("hedge delay = %v, %v; want >= 1ms once warm", d, ok)
	}
	// The delay is clamped to the cap.
	for i := 0; i < 64; i++ {
		h.observe("s0", time.Minute)
	}
	if d, _ := h.delay("s0", 2*time.Second); d != 2*time.Second {
		t.Fatalf("hedge delay = %v, want clamped to 2s", d)
	}
}

// nopFetch is package-level so the disabled-hook benchmark measures the
// hook, not closure construction.
func nopFetch(context.Context) (int, error) { return 0, nil }

// BenchmarkDisabledHedgeHook pins the cost of the hedging hook on the
// router fan-out path with hedging off: one nil check, no allocations
// (benchguard guard 12).
func BenchmarkDisabledHedgeHook(b *testing.B) {
	rt := &Router{}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hedgedFetch(rt, ctx, "s0", nopFetch); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRebalanceHandlerAPI pins the operator surface: POST starts a
// rebalance asynchronously (202), status reports progress and settles
// on "done", a second concurrent start gets 409, and malformed actions
// get synchronous 400s.
func TestRebalanceHandlerAPI(t *testing.T) {
	c := newRouterCluster(t, 2)
	subs := c.addSubjects(t, 16)

	coord := shard.NewCoordinator(filepath.Join(t.TempDir(), "rebalance.journal"),
		func(info shard.Info) shard.NodeClient { return NewMigrationNode(info.Addr) },
		func(_ context.Context, m *shard.Map) error { return c.rt.SetMap(m) },
		t.Logf)
	h := NewRebalanceHandler(c.rt, coord, nil)
	outer := http.NewServeMux()
	outer.Handle(ShardRebalancePath, h)
	outer.Handle(ShardRebalanceStatusPath, h)
	outer.Handle("/", c.rt)
	front := httptest.NewServer(outer)
	t.Cleanup(front.Close)
	api := NewClient(front.URL, nil)
	ctx := context.Background()

	// Bad requests are rejected synchronously.
	for _, bad := range []RebalanceRequest{
		{Action: "grow", ID: "s9", Addr: "http://x"},
		{Action: "add", ID: "s9"},                     // no addr
		{Action: "add", ID: "s0", Addr: "http://dup"}, // duplicate ID
		{Action: "remove", ID: "ghost"},               // unknown shard
		{Action: "remove"},                            // no id
	} {
		err := api.Call(ctx, http.MethodPost, ShardRebalancePath, bad, nil)
		var re *RemoteError
		if !errors.As(err, &re) || re.Status != http.StatusBadRequest {
			t.Fatalf("POST %+v = %v, want 400", bad, err)
		}
	}

	// Idle status: nothing active, nothing failed.
	var st shard.Status
	if err := api.Call(ctx, http.MethodGet, ShardRebalanceStatusPath, nil, &st); err != nil {
		t.Fatal(err)
	}
	if st.Active || st.Error != "" {
		t.Fatalf("idle status = %+v", st)
	}

	// Start a real grow. The POST returns 202 before the run finishes.
	base := c.rt.Map().Version()
	_, dest := newShardServer(t)
	req := RebalanceRequest{Action: "add", ID: "s2", Addr: dest.URL}
	if err := api.Call(ctx, http.MethodPost, ShardRebalancePath, req, &st); err != nil {
		t.Fatalf("POST add: %v", err)
	}

	// Poll status until the background run settles.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := api.Call(ctx, http.MethodGet, ShardRebalanceStatusPath, nil, &st); err != nil {
			t.Fatal(err)
		}
		if !st.Active && st.Phase != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebalance never settled: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.Phase != "done" || st.Error != "" {
		t.Fatalf("final status = %+v, want done", st)
	}
	if got := c.rt.Map().Version(); got != base+1 {
		t.Fatalf("router map version = %d, want %d", got, base+1)
	}
	if _, ok := c.rt.Map().Get("s2"); !ok {
		t.Fatal("committed map lacks the added shard")
	}

	// The cluster still decides every subject through the router.
	for _, sub := range subs {
		resp, err := c.client.Decide(ctx, permitReq(sub))
		if err != nil || !resp.Allowed {
			t.Fatalf("post-rebalance Decide(%s) = %+v, %v", sub, resp, err)
		}
	}
}
