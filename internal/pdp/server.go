package pdp

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/aware-home/grbac/internal/audit"
	"github.com/aware-home/grbac/internal/bundle"
	"github.com/aware-home/grbac/internal/core"
	"github.com/aware-home/grbac/internal/declog"
	"github.com/aware-home/grbac/internal/faults"
	"github.com/aware-home/grbac/internal/obs"
	"github.com/aware-home/grbac/internal/replica"
	"github.com/aware-home/grbac/internal/store"
)

// maxBodyBytes bounds request bodies; decision requests are small.
const maxBodyBytes = 1 << 20

// maxBatchSize bounds one /v1/decide/batch call; larger workloads split
// into several round trips rather than holding one snapshot response open.
const maxBatchSize = 512

// Server serves the PDP API for one GRBAC system. It implements
// http.Handler and can be mounted under any mux.
type Server struct {
	sys          *core.System
	decider      audit.Decider
	trail        *audit.Logger
	logger       *log.Logger
	mux          *http.ServeMux
	adminEnabled bool
	replicaSrc   *replica.Source
	follower     *replica.Follower
	durable      *store.Durable
	bundles      *bundle.Verifier
	declog       *declog.Exporter
	watchMaxWait time.Duration
	limiter      *limiter
	migration    migrationState
	recovered    atomic.Uint64
	metrics      *obs.Registry
	tracer       *obs.Tracer
	httpDur      *obs.HistogramVec
	httpReqs     *obs.CounterVec
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithAuditLogger wires decisions through an audit trail and exposes it at
// GET /v1/audit. The decision handlers log each successful decision
// themselves (rather than through audit.Wrap) so the record carries the
// request's correlation ID and can be joined to the wire reply and trace.
func WithAuditLogger(l *audit.Logger) ServerOption {
	return func(s *Server) { s.trail = l }
}

// WithDecisionLog surfaces a decision-log exporter's counters in the
// "declog" section of /v1/statsz and, when metrics are on, as
// grbac_declog_* series. The exporter is fed off the audit logger's
// export hook (wired where both are constructed), not here: the server
// only observes it, so the decision hot path gains nothing.
func WithDecisionLog(e *declog.Exporter) ServerOption {
	return func(s *Server) { s.declog = e }
}

// WithErrorLog sets the server's error logger (default: log.Default()).
func WithErrorLog(l *log.Logger) ServerOption {
	return func(s *Server) { s.logger = l }
}

// NewServer builds a PDP server over the given system.
func NewServer(sys *core.System, opts ...ServerOption) *Server {
	s := &Server{sys: sys, decider: sys, logger: log.Default(), watchMaxWait: defaultWatchMaxWait}
	for _, opt := range opts {
		opt(s)
	}
	if s.metrics != nil {
		s.registerMetrics()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/decide", s.instrument("/v1/decide", true, s.limited(s.handleDecide)))
	mux.HandleFunc("/v1/decide/batch", s.instrument("/v1/decide/batch", true, s.limited(s.handleDecideBatch)))
	mux.HandleFunc("/v1/check", s.instrument("/v1/check", true, s.limited(s.handleCheck)))
	mux.HandleFunc("/v1/state", s.instrument("/v1/state", false, s.handleState))
	mux.HandleFunc("/v1/healthz", s.instrument("/v1/healthz", false, s.handleHealthz))
	mux.HandleFunc("/v1/statsz", s.instrument("/v1/statsz", false, s.handleStatsz))
	if s.metrics != nil {
		mux.HandleFunc("/metrics", s.handleMetrics)
	}
	if s.tracer != nil {
		mux.HandleFunc("/v1/traces", s.handleTraces)
	}
	if s.trail != nil {
		mux.HandleFunc("/v1/audit", s.handleAudit)
	}
	if s.bundles != nil {
		mux.HandleFunc(BundlePath, s.handleBundlePush)
		mux.HandleFunc(BundleStatusPath, s.handleBundleStatus)
	}
	switch {
	case s.follower != nil:
		// A follower never serves local mutations, whatever the admin
		// setting: it redirects them to the cluster's single writer.
		s.registerFollower(mux)
	case s.adminEnabled:
		s.registerAdmin(mux)
		s.registerMigrate(mux)
	}
	if s.replicaSrc != nil {
		mux.HandleFunc(replica.SnapshotPath, s.handleReplicaSnapshot)
		mux.HandleFunc(replica.WatchPath, s.handleReplicaWatch)
		mux.HandleFunc(replica.DeltaPath, s.handleReplicaDelta)
	}
	s.mux = mux
	return s
}

var _ http.Handler = (*Server)(nil)

// ServeHTTP dispatches to the API mux behind the panic-recovery
// middleware: a crashing handler is contained, counted, and answered
// with a 500 rather than tearing the connection (or the process) down.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	tw := &trackingWriter{ResponseWriter: w}
	defer s.recoverPanic(tw, r)
	s.mux.ServeHTTP(tw, r)
}

// limited wraps a decision handler with admission control and the
// pdp.decide fault point. With no limiter configured only the fault hook
// remains (one atomic load when injection is off).
func (s *Server) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.limiter != nil {
			release, status := s.limiter.acquire(r.Context())
			if release == nil {
				w.Header().Set("Retry-After", s.limiter.retryAfter)
				s.writeStatus(w, status, "overloaded: decision capacity exhausted, retry later")
				return
			}
			defer release()
		}
		// Inside the admission slot, so injected latency occupies real
		// capacity and drives the shedding path under test.
		if err := faults.Inject(faults.PDPDecide); err != nil {
			s.writeStatus(w, http.StatusInternalServerError, "fault injected: "+err.Error())
			return
		}
		h(w, r)
	}
}

func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	corr := s.correlate(w, r)
	rt := traceOf(r)
	t := time.Now()
	req, ok := s.readDecideRequest(w, r)
	rt.step("decode", t)
	if !ok {
		return
	}
	if s.migrateIntercept(w, r, req.Subject, req.Session, req) {
		return
	}
	coreReq := req.toCore()
	t = time.Now()
	d, err := s.decider.Decide(coreReq)
	rt.step("mediate", t)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if s.trail != nil {
		t = time.Now()
		s.trail.LogWith(coreReq, d, corr)
		rt.step("audit", t)
	}
	resp := fromDecision(d)
	resp.Stale = s.stale()
	resp.CorrelationID = corr
	rt.decision(d.Allowed, resp.Stale)
	s.writeJSON(w, http.StatusOK, resp)
}

// batchDecider is the optional batch interface a decider may provide;
// core.System and audit.AuditedSystem both do. When present it is used so
// the whole batch is mediated against one policy snapshot.
type batchDecider interface {
	DecideBatch([]core.Request) []core.BatchResult
}

func (s *Server) handleDecideBatch(w http.ResponseWriter, r *http.Request) {
	corr := s.correlate(w, r)
	rt := traceOf(r)
	t := time.Now()
	var req BatchDecideRequest
	ok := s.readBody(w, r, &req, http.MethodPost)
	rt.step("decode", t)
	if !ok {
		return
	}
	if len(req.Requests) == 0 {
		s.writeStatus(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Requests) > maxBatchSize {
		s.writeStatus(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d exceeds limit %d", len(req.Requests), maxBatchSize))
		return
	}
	// Items for migrated subjects are mediated by their new owners
	// (proxied sub-batches); the local pass still runs the full batch and
	// its answers for those items are overwritten below.
	forwarded := s.migrateBatch(r.Context(), req.Requests)
	coreReqs := make([]core.Request, len(req.Requests))
	for i, dr := range req.Requests {
		coreReqs[i] = dr.toCore()
	}
	t = time.Now()
	var results []core.BatchResult
	if bd, ok := s.decider.(batchDecider); ok {
		results = bd.DecideBatch(coreReqs)
	} else {
		results = make([]core.BatchResult, len(coreReqs))
		for i, cr := range coreReqs {
			results[i].Decision, results[i].Err = s.decider.Decide(cr)
		}
	}
	rt.step("mediate", t)
	if s.trail != nil {
		t = time.Now()
		for i, res := range results {
			if forwarded != nil && forwarded[i] != nil {
				continue // audited by the new owner that mediated it
			}
			if res.Err == nil {
				s.trail.LogWith(coreReqs[i], res.Decision, corr)
			}
		}
		rt.step("audit", t)
	}
	resp := BatchDecideResponse{
		Results:       make([]BatchItem, len(results)),
		Stale:         s.stale(),
		CorrelationID: corr,
	}
	rt.markStale(resp.Stale)
	for i, res := range results {
		if forwarded != nil && forwarded[i] != nil {
			resp.Results[i] = *forwarded[i]
			continue
		}
		if res.Err != nil {
			resp.Results[i].Error = res.Err.Error()
			continue
		}
		d := fromDecision(res.Decision)
		resp.Results[i].Decision = &d
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	corr := s.correlate(w, r)
	rt := traceOf(r)
	t := time.Now()
	req, ok := s.readDecideRequest(w, r)
	rt.step("decode", t)
	if !ok {
		return
	}
	if s.migrateIntercept(w, r, req.Subject, req.Session, req) {
		return
	}
	coreReq := req.toCore()
	t = time.Now()
	d, err := s.decider.Decide(coreReq)
	rt.step("mediate", t)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if s.trail != nil {
		s.trail.LogWith(coreReq, d, corr)
	}
	resp := CheckResponse{Allowed: d.Allowed, Stale: s.stale(), CorrelationID: corr}
	rt.decision(d.Allowed, resp.Stale)
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeStatus(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.writeJSON(w, http.StatusOK, s.sys.Export())
}

// handleHealthz is the liveness probe. A follower past its staleness
// bound degrades to 503 so load balancers can shed it, while every
// decision endpoint keeps serving (marked stale) — graceful degradation,
// never an outage.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeStatus(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.stale() {
		st := s.follower.Stats()
		s.writeJSON(w, http.StatusServiceUnavailable, HealthResponse{
			Status:      "degraded",
			Reason:      "replication stale: no primary contact within the staleness bound",
			Replication: &st,
		})
		return
	}
	s.writeJSON(w, http.StatusOK, HealthResponse{Status: "ok"})
}

// handleStatsz reports the decision-cache counters (hits, misses,
// evictions, invalidations, generation) — the PDP's observability hook
// for cache effectiveness — plus replication lag when following.
func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeStatus(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	srv := s.serverStats()
	resp := StatszResponse{Stats: s.sys.Stats(), Server: &srv}
	if s.follower != nil {
		st := s.follower.Stats()
		resp.Replication = &st
	}
	if s.durable != nil {
		ds := s.durable.Stats()
		resp.Store = &ds
	}
	if s.trail != nil {
		as := s.trail.Summary()
		resp.Audit = &as
	}
	if s.declog != nil {
		dl := s.declog.Stats()
		resp.Declog = &dl
	}
	if s.bundles != nil {
		bs := s.bundles.Status()
		resp.Bundle = &bs
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleAudit serves the decision trail:
// GET /v1/audit?subject=&object=&transaction=&denies=true&limit=N.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeStatus(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query()
	f := audit.Filter{
		Subject:     core.SubjectID(q.Get("subject")),
		Object:      core.ObjectID(q.Get("object")),
		Transaction: core.TransactionID(q.Get("transaction")),
		DeniesOnly:  q.Get("denies") == "true",
	}
	for _, bound := range []struct {
		param string
		dst   *time.Time
	}{
		{"since", &f.Since},
		{"until", &f.Until},
	} {
		if raw := q.Get(bound.param); raw != "" {
			ts, err := time.Parse(time.RFC3339, raw)
			if err != nil {
				s.writeStatus(w, http.StatusBadRequest, "bad "+bound.param+": want RFC3339")
				return
			}
			*bound.dst = ts
		}
	}
	records := s.trail.Query(f)
	if lim := q.Get("limit"); lim != "" {
		n, err := strconv.Atoi(lim)
		if err != nil || n < 0 {
			s.writeStatus(w, http.StatusBadRequest, "bad limit")
			return
		}
		if len(records) > n {
			records = records[len(records)-n:]
		}
	}
	s.writeJSON(w, http.StatusOK, records)
}

func (s *Server) readDecideRequest(w http.ResponseWriter, r *http.Request) (DecideRequest, bool) {
	var req DecideRequest
	ok := s.readBody(w, r, &req, http.MethodPost)
	return req, ok
}

// readBody enforces the allowed methods, bounds the body, and decodes
// strict JSON into out.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request, out any, methods ...string) bool {
	allowed := false
	for _, m := range methods {
		if r.Method == m {
			allowed = true
			break
		}
	}
	if !allowed {
		s.writeStatus(w, http.StatusMethodNotAllowed, strings.Join(methods, " or ")+" only")
		return false
	}
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	defer func() {
		_, _ = io.Copy(io.Discard, body)
	}()
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(out); err != nil {
		s.writeStatus(w, http.StatusBadRequest, "malformed request: "+err.Error())
		return false
	}
	return true
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	if errors.Is(err, core.ErrNotFound) || errors.Is(err, core.ErrNoSession) {
		status = http.StatusNotFound
	}
	s.writeStatus(w, status, err.Error())
}

func (s *Server) writeStatus(w http.ResponseWriter, status int, msg string) {
	s.writeJSON(w, status, ErrorResponse{Error: msg})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logger.Printf("pdp: encode response: %v", err)
	}
}
