package pdp

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"github.com/aware-home/grbac/internal/core"
	"github.com/aware-home/grbac/internal/replica"
	"github.com/aware-home/grbac/internal/retry"
)

// ErrRemote reports a non-2xx reply from the PDP server.
var ErrRemote = errors.New("pdp: remote error")

// ErrTransport reports a failure to reach the PDP server at all
// (connection refused, reset, DNS failure, ...).
var ErrTransport = errors.New("pdp: transport error")

// RemoteError is the concrete error behind ErrRemote, carrying the HTTP
// status so callers (and the retry policy) can distinguish a client
// mistake (4xx, permanent) from a server fault (5xx, transient).
type RemoteError struct {
	Status  int
	Message string
	// RetryAfter is the server's parsed Retry-After hint (zero when the
	// reply carried none). Overloaded PDPs send it on 429/503 sheds; the
	// retry policy and circuit breaker honor it. Hints beyond
	// MaxRetryAfter are clamped to it — a misconfigured (or hostile)
	// server must not be able to wedge the breaker open for hours with one
	// far-future HTTP date.
	RetryAfter time.Duration
	// RetryAfterClamped reports that the server's hint exceeded
	// MaxRetryAfter and RetryAfter carries the clamped value, not the
	// server's.
	RetryAfterClamped bool
	// Moved carries the 421 redirect payload when the server reports the
	// request's subject migrated to another shard: the new owner and the
	// map version to catch up to. Nil on every other status.
	Moved *MovedInfo
}

// MaxRetryAfter caps how far a server Retry-After hint can push out the
// retry sleep floor and the breaker's open window.
const MaxRetryAfter = 5 * time.Minute

// Error renders the same strings the pre-typed errors produced, noting a
// clamped Retry-After so operators can see the server asked for more.
func (e *RemoteError) Error() string {
	suffix := ""
	if e.RetryAfterClamped {
		suffix = fmt.Sprintf(" (Retry-After clamped to %v)", e.RetryAfter)
	}
	if e.Message != "" {
		return fmt.Sprintf("pdp: remote error: %d: %s%s", e.Status, e.Message, suffix)
	}
	return fmt.Sprintf("pdp: remote error: status %d%s", e.Status, suffix)
}

// Is makes errors.Is(err, ErrRemote) hold for RemoteError values.
func (e *RemoteError) Is(target error) bool { return target == ErrRemote }

// Client talks to a PDP server.
type Client struct {
	base string
	http *http.Client
	// attempts is the total tries per request (1 = single-shot, the
	// default); retryBase seeds the exponential backoff between tries.
	attempts  int
	retryBase time.Duration
	breaker   *breaker
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithRetry enables retries for transient failures — transport errors,
// 5xx replies, and 429 sheds — with exponential backoff plus jitter
// between attempts, honoring context cancellation and any server
// Retry-After hint. maxAttempts counts the first try; other 4xx replies,
// decode errors, and context cancellation never retry. It is opt-in so
// tests and latency-sensitive callers keep deterministic single-shot
// behavior.
func WithRetry(maxAttempts int, baseDelay time.Duration) ClientOption {
	return func(c *Client) {
		if maxAttempts > 1 {
			c.attempts = maxAttempts
		}
		if baseDelay > 0 {
			c.retryBase = baseDelay
		}
	}
}

// WithCircuitBreaker makes the client fail fast with ErrCircuitOpen after
// `failures` consecutive transient failures, instead of hammering a down
// or overloaded PDP. The circuit stays open for a jittered cooldown
// (floored at any server Retry-After hint), then lets one probe through:
// probe success closes it, probe failure re-opens it. Composes under
// WithRetry — each retry attempt consults the breaker.
//
// Degenerate settings are clamped rather than ignored: failures < 1
// becomes 1 (trip on the first transient failure) and cooldown <= 0
// becomes defaultBreakerCooldown, so asking for a breaker always yields a
// working one — never a zero-width open window, and never a negative
// cooldown reaching the jitter's rand.Int63n (which panics on n <= 0).
func WithCircuitBreaker(failures int, cooldown time.Duration) ClientOption {
	return func(c *Client) {
		if failures < 1 {
			failures = 1
		}
		if cooldown <= 0 {
			cooldown = defaultBreakerCooldown
		}
		c.breaker = newBreaker(failures, cooldown)
	}
}

// pooledHTTPClient is the shared fan-out-tuned transport behind every
// Client built with a nil httpClient. http.DefaultTransport keeps only 2
// idle connections per host (DefaultMaxIdleConnsPerHost), so a router
// scatter-gathering dozens of concurrent requests at the same shard
// opens and tears down a TCP connection for nearly every call. Raising
// the idle pool to match the fan-out makes reuse the common case;
// MaxConnsPerHost bounds the damage of an unresponsive shard (a capped
// connection pile-up instead of an unbounded FD leak).
var pooledHTTPClient = newPooledHTTPClient()

func newPooledHTTPClient() *http.Client {
	t, ok := http.DefaultTransport.(*http.Transport)
	if !ok {
		return &http.Client{}
	}
	t = t.Clone()
	t.MaxIdleConns = 256
	t.MaxIdleConnsPerHost = 64
	t.MaxConnsPerHost = 256
	t.IdleConnTimeout = 90 * time.Second
	return &http.Client{Transport: t}
}

// PooledHTTPClient returns the shared connection-pooled client the pdp
// package uses by default, so other layers (router, SDK, replica pullers)
// can ride the same tuned transport instead of http.DefaultClient.
func PooledHTTPClient() *http.Client { return pooledHTTPClient }

// NewClient builds a client for the PDP at baseURL (e.g.
// "http://localhost:8125"). A nil httpClient selects the shared
// fan-out-tuned pooled client (see PooledHTTPClient).
func NewClient(baseURL string, httpClient *http.Client, opts ...ClientOption) *Client {
	if httpClient == nil {
		httpClient = pooledHTTPClient
	}
	c := &Client{
		base:      strings.TrimRight(baseURL, "/"),
		http:      httpClient,
		attempts:  1,
		retryBase: 100 * time.Millisecond,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Decide requests a full decision.
func (c *Client) Decide(ctx context.Context, req DecideRequest) (DecideResponse, error) {
	var resp DecideResponse
	err := c.post(ctx, "/v1/decide", req, &resp)
	return resp, err
}

// DecideBatch requests decisions for many requests in one round trip.
// The server mediates every item against the same policy snapshot, so the
// reply is internally consistent; results align index-for-index with reqs.
func (c *Client) DecideBatch(ctx context.Context, reqs []DecideRequest) (BatchDecideResponse, error) {
	var resp BatchDecideResponse
	err := c.post(ctx, "/v1/decide/batch", BatchDecideRequest{Requests: reqs}, &resp)
	return resp, err
}

// Check requests a boolean decision.
func (c *Client) Check(ctx context.Context, req DecideRequest) (bool, error) {
	var resp CheckResponse
	if err := c.post(ctx, "/v1/check", req, &resp); err != nil {
		return false, err
	}
	return resp.Allowed, nil
}

// State fetches the server's policy snapshot.
func (c *Client) State(ctx context.Context) (core.State, error) {
	var st core.State
	err := c.get(ctx, "/v1/state", &st)
	return st, err
}

// Stats fetches the server's decision-cache statistics.
func (c *Client) Stats(ctx context.Context) (core.Stats, error) {
	var st core.Stats
	err := c.get(ctx, "/v1/statsz", &st)
	return st, err
}

// Statsz fetches the full statistics reply, including the replication
// section follower PDPs expose.
func (c *Client) Statsz(ctx context.Context) (StatszResponse, error) {
	var st StatszResponse
	err := c.get(ctx, "/v1/statsz", &st)
	return st, err
}

// ReplicaSnapshot fetches the primary's generation-stamped policy export.
func (c *Client) ReplicaSnapshot(ctx context.Context) (replica.Snapshot, error) {
	var snap replica.Snapshot
	err := c.get(ctx, replica.SnapshotPath, &snap)
	return snap, err
}

// ReplicaWatch long-polls the replication feed until the server's
// generation exceeds after (under epoch), its long-poll cap elapses, or
// ctx is done; it returns the feed position either way. Callers should
// not combine this with an http.Client whose Timeout undercuts the
// server's poll cap.
func (c *Client) ReplicaWatch(ctx context.Context, epoch string, after uint64) (replica.WatchResponse, error) {
	q := "?epoch=" + epoch + "&after=" + strconv.FormatUint(after, 10)
	var resp replica.WatchResponse
	err := c.get(ctx, replica.WatchPath+q, &resp)
	return resp, err
}

// Healthy reports whether the server answers its liveness probe. A
// follower past its staleness bound answers 503 and reports unhealthy
// here, even though its decision endpoints still serve.
func (c *Client) Healthy(ctx context.Context) bool {
	var out HealthResponse
	return c.get(ctx, "/v1/healthz", &out) == nil && out.Status == "ok"
}

// SubjectsInRole asks the server which of its subjects hold the subject
// role (directly or through inheritance). On a shard it covers only that
// shard's partition — the router unions the per-shard answers.
func (c *Client) SubjectsInRole(ctx context.Context, role string) (SubjectsInRoleResponse, error) {
	var resp SubjectsInRoleResponse
	err := c.get(ctx, "/v1/query/subjects-in-role?role="+url.QueryEscape(role), &resp)
	return resp, err
}

// Call issues an arbitrary JSON request against the server — the
// router's generic forwarding primitive for admin endpoints, so every
// admin wire shape does not need a dedicated method. A nil `in` sends no
// body; a nil `out` discards the reply body.
func (c *Client) Call(ctx context.Context, method, path string, in, out any) error {
	if in == nil {
		return c.do(ctx, func() (*http.Request, error) {
			req, err := http.NewRequestWithContext(ctx, method, c.base+path, nil)
			if err != nil {
				return nil, fmt.Errorf("pdp: build request: %w", err)
			}
			return req, nil
		}, out)
	}
	return c.request(ctx, method, path, in, out)
}

func (c *Client) post(ctx context.Context, path string, in, out any) error {
	return c.request(ctx, http.MethodPost, path, in, out)
}

func (c *Client) request(ctx context.Context, method, path string, in, out any) error {
	raw, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("pdp: encode request: %w", err)
	}
	return c.do(ctx, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("pdp: build request: %w", err)
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	}, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	return c.do(ctx, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
		if err != nil {
			return nil, fmt.Errorf("pdp: build request: %w", err)
		}
		return req, nil
	}, out)
}

// do runs one request, retrying transient failures when the client was
// built WithRetry. The request is rebuilt per attempt so bodies replay.
// Every attempt consults the circuit breaker (when one is configured) and
// feeds its outcome back, so sustained failure degrades to fail-fast.
func (c *Client) do(ctx context.Context, build func() (*http.Request, error), out any) error {
	// The shared policy: exponential doubling from retryBase, capped at
	// maxRetryDelay (unbounded growth would overflow time.Duration and
	// produce pointlessly huge sleeps long before that), with full jitter
	// decorrelating a fleet of retrying clients.
	bo := retry.New(c.retryBase, maxRetryDelay, 100*time.Millisecond)
	for attempt := 1; ; attempt++ {
		if c.breaker != nil && !c.breaker.allow(time.Now()) {
			return ErrCircuitOpen
		}
		req, err := build()
		if err != nil {
			return err
		}
		err = c.doOnce(req, out)
		c.observe(err)
		if err == nil || attempt >= c.attempts || !transient(err) || ctx.Err() != nil {
			return err
		}
		// A server Retry-After hint puts a floor under the sleep — the
		// server knows its own recovery better than we do (but the hint
		// was already clamped at MaxRetryAfter on parse).
		sleep := bo.Delay()
		if ra := retryAfterOf(err); ra > sleep {
			sleep = ra
		}
		t := time.NewTimer(sleep)
		select {
		case <-ctx.Done():
			t.Stop()
			return err
		case <-t.C:
		}
	}
}

// observe classifies one attempt's outcome for the circuit breaker. A
// definitive reply — success, 4xx, or a decode error on a 2xx — proves the
// server responsive and closes the circuit; a transient failure counts
// against it; the caller's own context ending says nothing either way.
func (c *Client) observe(err error) {
	if c.breaker == nil {
		return
	}
	switch {
	case err == nil:
		c.breaker.success()
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		c.breaker.neutral()
	case transient(err):
		c.breaker.failure(time.Now(), retryAfterOf(err))
	default:
		c.breaker.success()
	}
}

// retryAfterOf extracts the server's Retry-After hint from an error, if
// the error carries one.
func retryAfterOf(err error) time.Duration {
	var re *RemoteError
	if errors.As(err, &re) {
		return re.RetryAfter
	}
	return 0
}

// transient reports whether a failure is worth retrying: transport
// errors (the server may be back next attempt), 5xx replies, and 429
// sheds (the server explicitly asked for a later retry). Context
// cancellation and deadline expiry are the caller giving up, never
// retried; other 4xx replies and decode errors are permanent.
func transient(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return re.Status >= 500 || re.Status == http.StatusTooManyRequests
	}
	return errors.Is(err, ErrTransport)
}

func (c *Client) doOnce(req *http.Request, out any) error {
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("%w: %w", ErrTransport, err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		ra, clamped := parseRetryAfter(resp.Header.Get("Retry-After"))
		remote := &RemoteError{
			Status:            resp.StatusCode,
			RetryAfter:        ra,
			RetryAfterClamped: clamped,
		}
		var e ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err == nil {
			remote.Message = e.Error
			remote.Moved = e.Moved
		}
		return remote
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("pdp: decode response: %w", err)
	}
	return nil
}

// parseRetryAfter reads an RFC 9110 Retry-After value: delay seconds or an
// HTTP date. Unparseable or past values yield zero (no hint). Values past
// MaxRetryAfter — a delay-seconds overflow attempt or an HTTP date years
// out — are clamped to it, with clamped reporting that it happened.
func parseRetryAfter(raw string) (d time.Duration, clamped bool) {
	if raw == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(raw); err == nil {
		if secs < 0 {
			return 0, false
		}
		// Bound before multiplying: a huge seconds count would overflow
		// the Duration arithmetic itself.
		if time.Duration(secs) > MaxRetryAfter/time.Second {
			return MaxRetryAfter, true
		}
		return time.Duration(secs) * time.Second, false
	}
	if at, err := http.ParseTime(raw); err == nil {
		if d := time.Until(at); d > 0 {
			if d > MaxRetryAfter {
				return MaxRetryAfter, true
			}
			return d, false
		}
	}
	return 0, false
}
