package pdp

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"github.com/aware-home/grbac/internal/core"
)

// ErrRemote reports a non-2xx reply from the PDP server.
var ErrRemote = errors.New("pdp: remote error")

// Client talks to a PDP server.
type Client struct {
	base string
	http *http.Client
}

// NewClient builds a client for the PDP at baseURL (e.g.
// "http://localhost:8125"). A nil httpClient uses http.DefaultClient.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: httpClient}
}

// Decide requests a full decision.
func (c *Client) Decide(ctx context.Context, req DecideRequest) (DecideResponse, error) {
	var resp DecideResponse
	err := c.post(ctx, "/v1/decide", req, &resp)
	return resp, err
}

// Check requests a boolean decision.
func (c *Client) Check(ctx context.Context, req DecideRequest) (bool, error) {
	var resp CheckResponse
	if err := c.post(ctx, "/v1/check", req, &resp); err != nil {
		return false, err
	}
	return resp.Allowed, nil
}

// State fetches the server's policy snapshot.
func (c *Client) State(ctx context.Context) (core.State, error) {
	var st core.State
	err := c.get(ctx, "/v1/state", &st)
	return st, err
}

// Stats fetches the server's decision-cache statistics.
func (c *Client) Stats(ctx context.Context) (core.Stats, error) {
	var st core.Stats
	err := c.get(ctx, "/v1/statsz", &st)
	return st, err
}

// Healthy reports whether the server answers its liveness probe.
func (c *Client) Healthy(ctx context.Context) bool {
	var out map[string]string
	return c.get(ctx, "/v1/healthz", &out) == nil && out["status"] == "ok"
}

func (c *Client) post(ctx context.Context, path string, in, out any) error {
	return c.request(ctx, http.MethodPost, path, in, out)
}

func (c *Client) request(ctx context.Context, method, path string, in, out any) error {
	raw, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("pdp: encode request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, bytes.NewReader(raw))
	if err != nil {
		return fmt.Errorf("pdp: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return fmt.Errorf("pdp: build request: %w", err)
	}
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("pdp: transport: %w", err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		var e ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err == nil && e.Error != "" {
			return fmt.Errorf("%w: %d: %s", ErrRemote, resp.StatusCode, e.Error)
		}
		return fmt.Errorf("%w: status %d", ErrRemote, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("pdp: decode response: %w", err)
	}
	return nil
}
