package pdp

import (
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"github.com/aware-home/grbac/internal/core"
	"github.com/aware-home/grbac/internal/policy"
	"github.com/aware-home/grbac/internal/replica"
	"github.com/aware-home/grbac/internal/store"
)

var quietStore = store.WithDurableLogger(log.New(io.Discard, "", 0))

// openDurablePrimary boots a durable store in dir (seeding the server
// policy on first boot) and returns the store plus a PDP server wired as
// a durable primary: epoch-pinned source, delta provider, store stats.
func openDurablePrimary(t *testing.T, dir string) (*store.Durable, *Server) {
	t.Helper()
	compiled, err := policy.Compile(serverPolicy)
	if err != nil {
		t.Fatal(err)
	}
	seedSys := core.NewSystem()
	if err := compiled.Apply(seedSys, nil); err != nil {
		t.Fatal(err)
	}
	seed := seedSys.Export()
	dur, err := store.Open(dir, store.WithSeedState(&seed), quietStore)
	if err != nil {
		t.Fatal(err)
	}
	sys := dur.System()
	srv := NewServer(sys,
		WithAdmin(),
		WithReplicaSource(replica.NewSource(sys,
			replica.WithSourceEpoch(dur.Epoch()),
			replica.WithDeltaProvider(dur))),
		WithDurableStore(dur),
		WithWatchMaxWait(100*time.Millisecond))
	return dur, srv
}

// TestReplicaDeltaEndpoint pins the delta feed's HTTP contract: 200 with
// the journaled tail for a coverable position, 410 Gone for anything the
// tail cannot answer (foreign epoch, evicted or future position, no
// durable store at all), 400 for a malformed position.
func TestReplicaDeltaEndpoint(t *testing.T) {
	dur, server := openDurablePrimary(t, t.TempDir())
	defer dur.Close()
	ts := httptest.NewServer(server)
	t.Cleanup(ts.Close)

	sys := dur.System()
	base := sys.Generation()
	if err := sys.AddSubject("bob"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddSubject("carol"); err != nil {
		t.Fatal(err)
	}

	get := func(query string) (int, []byte) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + replica.DeltaPath + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, raw
	}

	status, raw := get("?epoch=" + dur.Epoch() + "&after=" + itoa(base))
	if status != http.StatusOK {
		t.Fatalf("coverable delta status = %d, want 200 (%s)", status, raw)
	}
	var delta replica.Delta
	if err := json.Unmarshal(raw, &delta); err != nil {
		t.Fatal(err)
	}
	if delta.Epoch != dur.Epoch() || len(delta.Mutations) != 2 {
		t.Fatalf("delta = %+v, want two mutations under epoch %s", delta, dur.Epoch())
	}
	if delta.Generation != sys.Generation() {
		t.Fatalf("delta generation %d != head %d", delta.Generation, sys.Generation())
	}

	if status, _ := get("?epoch=some-other-primary&after=" + itoa(base)); status != http.StatusGone {
		t.Fatalf("foreign epoch status = %d, want 410", status)
	}
	if status, _ := get("?epoch=" + dur.Epoch() + "&after=0"); status != http.StatusGone {
		t.Fatalf("pre-window position status = %d, want 410", status)
	}
	if status, _ := get("?epoch=" + dur.Epoch() + "&after=" + itoa(sys.Generation()+10)); status != http.StatusGone {
		t.Fatalf("future position status = %d, want 410", status)
	}
	if status, _ := get("?epoch=" + dur.Epoch() + "&after=banana"); status != http.StatusBadRequest {
		t.Fatalf("malformed position status = %d, want 400", status)
	}

	// A primary without a durable store mounts the path but can never
	// serve it: always 410, so followers fall back to full snapshots.
	plainSrv, plainSys := newTestServerWithSource(t)
	resp, err := plainSrv.Client().Get(plainSrv.URL + replica.DeltaPath +
		"?epoch=x&after=" + itoa(plainSys.Generation()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("delta without durable store status = %d, want 410", resp.StatusCode)
	}
}

// TestStatszStoreSection: a durable primary's /v1/statsz carries the
// store section (epoch, WAL position, replay report); a plain in-memory
// server omits it.
func TestStatszStoreSection(t *testing.T) {
	dur, server := openDurablePrimary(t, t.TempDir())
	defer dur.Close()
	ts := httptest.NewServer(server)
	t.Cleanup(ts.Close)

	if err := dur.System().AddSubject("bob"); err != nil {
		t.Fatal(err)
	}
	st, err := NewClient(ts.URL, ts.Client()).Statsz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Store == nil {
		t.Fatal("durable primary statsz missing store section")
	}
	if st.Store.Epoch != dur.Epoch() || st.Store.WALAppends == 0 {
		t.Fatalf("store section = %+v", st.Store)
	}
	if st.Store.Generation < st.Store.CheckpointGeneration {
		t.Fatalf("store generation %d below checkpoint %d",
			st.Store.Generation, st.Store.CheckpointGeneration)
	}

	plainSrv, _ := newTestServerWithSource(t)
	st, err = NewClient(plainSrv.URL, plainSrv.Client()).Statsz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Store != nil {
		t.Fatal("in-memory server statsz grew a store section")
	}
}

// TestDurableClusterPrimaryRestartDeltaSync is the cluster half of the
// durability story: a follower syncs once in full, then rides the delta
// feed; the primary dies without ceremony and comes back from its data
// directory under the same epoch; the follower keeps its state and
// catches up through deltas alone — same epoch, no second full snapshot,
// lag drained, post-restart mutations visible.
func TestDurableClusterPrimaryRestartDeltaSync(t *testing.T) {
	dir := t.TempDir()
	dur1, server1 := openDurablePrimary(t, dir)

	// The follower needs one stable primary URL across the restart, so the
	// test server proxies to whichever incarnation currently holds the
	// pointer.
	var current atomic.Pointer[Server]
	current.Store(server1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		current.Load().ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	f := replica.NewFollower(core.NewSystem(), ts.URL,
		replica.WithBackoff(time.Millisecond, 10*time.Millisecond),
		replica.WithWatchTimeout(time.Second))
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go func() { _ = f.Run(ctx) }()

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s; follower stats %+v", what, f.Stats())
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Bootstrap: exactly one full snapshot.
	waitFor("initial full sync", func() bool { return f.Stats().Syncs == 1 })

	// Steady state: mutations flow as deltas, not snapshots.
	if err := dur1.System().AddSubject("pre-crash"); err != nil {
		t.Fatal(err)
	}
	waitFor("pre-crash delta", func() bool { return f.System().HasSubject("pre-crash") })
	preStats := f.Stats()
	if preStats.Syncs != 1 {
		t.Fatalf("steady-state catch-up used a full snapshot: %+v", preStats)
	}
	if preStats.DeltaSyncs == 0 {
		t.Fatalf("steady-state catch-up did not use the delta feed: %+v", preStats)
	}

	// Kill the primary: no Close, no checkpoint — the process just stops
	// answering. Its durable directory is all that survives.
	epochBefore := dur1.Epoch()
	genBefore := dur1.System().Generation()

	// Restart from the same directory. Same epoch, generation moved past
	// everything the dead incarnation could have acked.
	dur2, server2 := openDurablePrimary(t, dir)
	defer dur2.Close()
	if dur2.Epoch() != epochBefore {
		t.Fatalf("epoch changed across restart: %s -> %s", epochBefore, dur2.Epoch())
	}
	if dur2.System().Generation() < genBefore {
		t.Fatalf("generation regressed across restart: %d < %d", dur2.System().Generation(), genBefore)
	}
	if !dur2.System().HasSubject("pre-crash") {
		t.Fatal("restart lost an acked mutation")
	}
	current.Store(server2)

	// The follower re-converges through the delta feed alone: the restart
	// generation jump and the new mutation arrive without a snapshot.
	if err := dur2.System().AddSubject("post-restart"); err != nil {
		t.Fatal(err)
	}
	waitFor("post-restart delta", func() bool { return f.System().HasSubject("post-restart") })
	waitFor("lag drain", func() bool { return f.Stats().Lag == 0 })

	post := f.Stats()
	if post.Syncs != preStats.Syncs {
		t.Fatalf("restart forced a full resync: %d -> %d full snapshots", preStats.Syncs, post.Syncs)
	}
	if post.DeltaSyncs <= preStats.DeltaSyncs {
		t.Fatalf("no delta syncs across restart: %+v", post)
	}
	if post.Epoch != epochBefore {
		t.Fatalf("follower epoch drifted: %s != %s", post.Epoch, epochBefore)
	}
	if post.AppliedGeneration != dur2.System().Generation() {
		t.Fatalf("follower at generation %d, primary at %d", post.AppliedGeneration, dur2.System().Generation())
	}

	// And the replicated policy still decides.
	ok, err := f.System().CheckAccess(core.Request{Subject: "alice", Object: "tv",
		Transaction: "use", Environment: []core.RoleID{"weekday-free-time"}})
	if err != nil || !ok {
		t.Fatalf("follower decision after restart = %v, %v; want permit", ok, err)
	}
}

func itoa(n uint64) string { return strconv.FormatUint(n, 10) }
