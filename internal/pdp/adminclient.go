package pdp

import (
	"context"
	"net/url"
	"strconv"
	"strings"
	"time"

	"github.com/aware-home/grbac/internal/audit"
)

// Administration client methods, matching the endpoints enabled by
// WithAdmin. Each returns an error wrapping ErrRemote on non-2xx replies.

// CreateRole declares a role on the server.
func (c *Client) CreateRole(ctx context.Context, req RoleRequest) error {
	return c.post(ctx, "/v1/admin/roles", req, nil)
}

// DeleteRole removes a role and everything referencing it.
func (c *Client) DeleteRole(ctx context.Context, req RoleRequest) error {
	return c.request(ctx, "DELETE", "/v1/admin/roles", req, nil)
}

// UpsertSubject registers a subject (if new) and assigns the listed roles.
func (c *Client) UpsertSubject(ctx context.Context, req BindingRequest) error {
	return c.post(ctx, "/v1/admin/subjects", req, nil)
}

// UpsertObject registers an object (if new) and assigns the listed roles.
func (c *Client) UpsertObject(ctx context.Context, req BindingRequest) error {
	return c.post(ctx, "/v1/admin/objects", req, nil)
}

// CreateTransaction declares a transaction.
func (c *Client) CreateTransaction(ctx context.Context, req TransactionRequest) error {
	return c.post(ctx, "/v1/admin/transactions", req, nil)
}

// GrantPermission installs a permission.
func (c *Client) GrantPermission(ctx context.Context, req PermissionRequest) error {
	return c.post(ctx, "/v1/admin/permissions", req, nil)
}

// RevokePermission removes a permission.
func (c *Client) RevokePermission(ctx context.Context, req PermissionRequest) error {
	return c.request(ctx, "DELETE", "/v1/admin/permissions", req, nil)
}

// AddSoD installs a separation-of-duty constraint.
func (c *Client) AddSoD(ctx context.Context, req SoDRequest) error {
	return c.post(ctx, "/v1/admin/sod", req, nil)
}

// OpenSession creates a session for a subject and returns its ID.
func (c *Client) OpenSession(ctx context.Context, subject string) (string, error) {
	var resp SessionResponse
	if err := c.post(ctx, "/v1/sessions", SessionRequest{Subject: subject}, &resp); err != nil {
		return "", err
	}
	return resp.Session, nil
}

// CloseSession ends a session.
func (c *Client) CloseSession(ctx context.Context, session string) error {
	return c.request(ctx, "DELETE", "/v1/sessions", SessionRequest{Session: session}, nil)
}

// SetSessionRole activates (active=true) or deactivates a role in a
// session.
func (c *Client) SetSessionRole(ctx context.Context, session, role string, active bool) error {
	return c.post(ctx, "/v1/sessions/roles", SessionRoleRequest{
		Session: session, Role: role, Active: active,
	}, nil)
}

// WhoCan runs the reverse review query: which subjects may run the
// transaction on the object under the given active environment roles.
func (c *Client) WhoCan(ctx context.Context, transaction, object string, env []string) ([]string, error) {
	var resp WhoCanResponse
	q := url.Values{}
	q.Set("transaction", transaction)
	q.Set("object", object)
	q.Set("env", strings.Join(env, ","))
	if err := c.get(ctx, "/v1/query/who-can?"+q.Encode(), &resp); err != nil {
		return nil, err
	}
	return resp.Subjects, nil
}

// AuditQuery selects audit records from GET /v1/audit.
type AuditQuery struct {
	Subject     string
	Object      string
	Transaction string
	DeniesOnly  bool
	Limit       int
	// Since and Until bound record timestamps (zero = unbounded).
	Since time.Time
	Until time.Time
}

// Audit fetches audit records matching the query. The server must have
// been built with WithAuditLogger.
func (c *Client) Audit(ctx context.Context, query AuditQuery) ([]audit.Record, error) {
	q := url.Values{}
	if query.Subject != "" {
		q.Set("subject", query.Subject)
	}
	if query.Object != "" {
		q.Set("object", query.Object)
	}
	if query.Transaction != "" {
		q.Set("transaction", query.Transaction)
	}
	if query.DeniesOnly {
		q.Set("denies", "true")
	}
	if query.Limit > 0 {
		q.Set("limit", strconv.Itoa(query.Limit))
	}
	if !query.Since.IsZero() {
		q.Set("since", query.Since.Format(time.RFC3339))
	}
	if !query.Until.IsZero() {
		q.Set("until", query.Until.Format(time.RFC3339))
	}
	var records []audit.Record
	path := "/v1/audit"
	if enc := q.Encode(); enc != "" {
		path += "?" + enc
	}
	if err := c.get(ctx, path, &records); err != nil {
		return nil, err
	}
	return records, nil
}

// WhatCan lists a subject's entitlements under the given environment.
func (c *Client) WhatCan(ctx context.Context, subject string, env []string) ([]EntitlementWire, error) {
	var resp WhatCanResponse
	q := url.Values{}
	q.Set("subject", subject)
	q.Set("env", strings.Join(env, ","))
	if err := c.get(ctx, "/v1/query/what-can?"+q.Encode(), &resp); err != nil {
		return nil, err
	}
	return resp.Entitlements, nil
}
