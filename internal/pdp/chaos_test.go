package pdp

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/aware-home/grbac/internal/audit"
	"github.com/aware-home/grbac/internal/core"
	"github.com/aware-home/grbac/internal/environment"
	"github.com/aware-home/grbac/internal/event"
	"github.com/aware-home/grbac/internal/faults"
	"github.com/aware-home/grbac/internal/replica"
)

// TestChaosPrimaryFollowerUnderFaults is the capstone chaos drill: a
// primary PDP (sensor-fed environment, tamper-evident event log, audit
// trail, admission control) and a live follower, both run under an armed
// fault plan — slow and panicking decision handlers, dropped replication
// polls, a crashing bus subscriber, a stalled sensor feed — while a
// request flood hits the primary. The invariants checked are the PR's
// robustness contract:
//
//   - overload sheds with 429 + Retry-After, and some requests still land;
//   - no panic escapes: handlers answer 500, the bus recovers, the HMAC
//     chain still verifies;
//   - expired environment context fails safe to deny, with the reason in
//     the audit trail;
//   - the follower rides out dropped polls and converges on the primary;
//   - the gauges (shed, recovered panics) surface in /v1/statsz;
//   - after teardown no goroutines are leaked.
func TestChaosPrimaryFollowerUnderFaults(t *testing.T) {
	baseline := runtime.NumGoroutine()
	quiet := log.New(io.Discard, "", 0)

	plan := faults.NewPlan(42,
		// Half the admitted decisions stall 30ms while holding one of the
		// two admission slots — that is what drives the shedding.
		faults.Rule{Point: faults.PDPDecide, Prob: 0.5,
			Action: faults.Action{Delay: 30 * time.Millisecond}},
		// Every 5th admitted decision panics, twice.
		faults.Rule{Point: faults.PDPDecide, Every: 5, Limit: 2,
			Action: faults.Action{Panic: "chaos drill"}},
		// The first five replication polls are dropped on the floor.
		faults.Rule{Point: faults.ReplicaWatch, Limit: 5,
			Action: faults.Action{Err: errors.New("injected partition")}},
		// The sensor feed is slightly stalled.
		faults.Rule{Point: faults.EnvironmentSet,
			Action: faults.Action{Delay: time.Millisecond}},
	)
	faults.Activate(plan)
	t.Cleanup(faults.Deactivate)

	// --- primary: sensors → TTL'd store → engine → system, with a
	// tamper-evident bus log and a subscriber that always crashes.
	now := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	var clockMu sync.Mutex
	clock := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return now
	}
	hmacLog, err := event.NewLog([]byte("chaos-drill-key"))
	if err != nil {
		t.Fatal(err)
	}
	bus := event.NewBus(event.WithLog(hmacLog), event.WithBusLogger(quiet), event.WithBusClock(clock))
	bus.Subscribe(func(event.Event) { panic("crashing subscriber") }, event.TypeStateChanged)

	store := environment.NewStore(
		environment.WithStoreBus(bus),
		environment.WithStoreClock(clock),
		environment.WithDefaultTTL(30*time.Second),
	)
	engine := environment.NewEngine(store, environment.WithClock(clock), environment.WithBus(bus))
	if err := engine.Define("kitchen-occupied", environment.AttrEquals{
		Key: "motion.kitchen", Value: environment.Bool(true),
	}); err != nil {
		t.Fatal(err)
	}

	primarySys := core.NewSystem(core.WithEnvironmentSource(engine))
	for _, err := range []error{
		primarySys.AddRole(core.Role{ID: "resident", Kind: core.SubjectRole}),
		primarySys.AddRole(core.Role{ID: "appliance", Kind: core.ObjectRole}),
		primarySys.AddRole(core.Role{ID: "kitchen-occupied", Kind: core.EnvironmentRole}),
		primarySys.AddSubject("alice"),
		primarySys.AssignSubjectRole("alice", "resident"),
		primarySys.AddObject("stove"),
		primarySys.AssignObjectRole("stove", "appliance"),
		primarySys.AddTransaction(core.SimpleTransaction("use")),
		primarySys.Grant(core.Permission{
			Subject: "resident", Object: "appliance",
			Environment: "kitchen-occupied", Transaction: "use", Effect: core.Permit,
		}),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	store.Set("motion.kitchen", environment.Bool(true))

	primarySrv := httptest.NewServer(NewServer(primarySys,
		WithAuditLogger(audit.NewLogger()),
		WithMaxInflight(2, 20*time.Millisecond),
		WithReplicaSource(replica.NewSource(primarySys)),
		WithWatchMaxWait(100*time.Millisecond),
		WithErrorLog(quiet),
	))

	// --- follower: replicates the primary through the faulty transport.
	followerSys := core.NewSystem()
	follower := replica.NewFollower(followerSys, primarySrv.URL,
		replica.WithBackoff(time.Millisecond, 10*time.Millisecond),
		replica.WithWatchTimeout(200*time.Millisecond),
		replica.WithMaxStaleness(5*time.Second),
		replica.WithFollowerLogger(quiet),
	)
	followerCtx, stopFollower := context.WithCancel(context.Background())
	followerDone := make(chan struct{})
	go func() {
		defer close(followerDone)
		_ = follower.Run(followerCtx)
	}()
	followerSrv := httptest.NewServer(NewServer(followerSys, WithFollower(follower)))

	body := `{"subject":"alice","object":"stove","transaction":"use"}`

	// --- phase 1: flood the primary past its admission capacity.
	const flood = 40
	codes := make([]int, flood)
	retryAfter := make([]string, flood)
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(primarySrv.URL+"/v1/check", "application/json",
				strings.NewReader(body))
			if err != nil {
				t.Errorf("flood request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
			_, _ = io.Copy(io.Discard, resp.Body)
		}(i)
	}
	wg.Wait()

	var ok, shed, failed int
	for i, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if retryAfter[i] == "" {
				t.Errorf("shed request %d missing Retry-After", i)
			}
		case http.StatusInternalServerError:
			failed++ // injected panic or error, recovered into a 500
		default:
			t.Errorf("flood request %d: unexpected status %d", i, c)
		}
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("flood: %d ok / %d shed / %d failed — want both admitted and shed", ok, shed, failed)
	}

	// --- phase 2: enough sequential traffic to walk the hit counter past
	// both scheduled panics (every 5th admitted decision, limit 2); the
	// server must keep answering throughout.
	for i := 0; i < 12; i++ {
		resp, err := http.Post(primarySrv.URL+"/v1/check", "application/json",
			strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("sequential request %d: status %d", i, resp.StatusCode)
		}
	}

	// --- phase 3: crashing bus subscriber. Sensor updates keep flowing
	// (each one panics the subscriber), the bus recovers every time, and
	// the tamper-evident log still verifies.
	for i := 0; i < 3; i++ {
		store.Set("motion.kitchen", environment.Bool(i%2 == 0))
	}
	if got := bus.RecoveredPanics(); got == 0 {
		t.Error("bus recovered no subscriber panics")
	}
	if err := hmacLog.Verify(); err != nil {
		t.Errorf("HMAC chain broken after subscriber panics: %v", err)
	}

	// --- phase 4: the sensor feed goes quiet past the TTL; decisions must
	// fail safe to deny and the audit trail must say why.
	store.Set("motion.kitchen", environment.Bool(true))
	clockMu.Lock()
	now = now.Add(time.Minute)
	clockMu.Unlock()
	resp, err := http.Post(primarySrv.URL+"/v1/decide", "application/json",
		strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var d DecideResponse
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d.Allowed || !strings.Contains(d.Reason, "fail-safe") {
		t.Fatalf("stale context decision: %+v", d)
	}
	auditResp, err := http.Get(primarySrv.URL + "/v1/audit?denies=true")
	if err != nil {
		t.Fatal(err)
	}
	var records []audit.Record
	if err := json.NewDecoder(auditResp.Body).Decode(&records); err != nil {
		t.Fatal(err)
	}
	auditResp.Body.Close()
	foundFailSafe := false
	for _, rec := range records {
		if strings.Contains(rec.Reason, "fail-safe") && strings.Contains(rec.Reason, "motion.kitchen") {
			foundFailSafe = true
		}
	}
	if !foundFailSafe {
		t.Errorf("no fail-safe deny in the audit trail (%d deny records)", len(records))
	}

	// --- phase 5: the follower must have ridden out the dropped polls and
	// converged; a primary mutation must still propagate.
	if err := primarySys.AddSubject("grandma"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if has := func() bool {
			for _, s := range followerSys.Subjects() {
				if s == "grandma" {
					return true
				}
			}
			return false
		}(); has {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never converged (stats %+v)", follower.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if plan.Fired(faults.ReplicaWatch) == 0 {
		t.Error("no replication polls were dropped — fault plan not exercised")
	}

	// --- phase 6: gauges surface in statsz.
	st := fetchStatsz(t, primarySrv.URL)
	if st.Server == nil {
		t.Fatal("statsz missing server section")
	}
	if st.Server.Shed == 0 || st.Server.RecoveredPanics == 0 {
		t.Errorf("statsz server gauges = %+v, want shed > 0 and recovered_panics > 0", st.Server)
	}
	if st.Server.InflightNow != 0 {
		t.Errorf("statsz inflight_now = %d after drain", st.Server.InflightNow)
	}

	// --- teardown: everything shuts down and no goroutines leak.
	faults.Deactivate()
	stopFollower()
	<-followerDone
	followerSrv.Close()
	primarySrv.Close()

	deadline = time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d at teardown, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Logf("chaos summary: %s; flood %d ok / %d shed / %d failed; follower %+v",
		plan.Summary(), ok, shed, failed, follower.Stats())
}
