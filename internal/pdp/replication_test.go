package pdp

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"github.com/aware-home/grbac/internal/core"
	"github.com/aware-home/grbac/internal/policy"
	"github.com/aware-home/grbac/internal/replica"
)

// newTestServerWithSource is newTestServer plus the replication feed:
// the returned server is a primary.
func newTestServerWithSource(t *testing.T) (*httptest.Server, *core.System) {
	t.Helper()
	compiled, err := policy.Compile(serverPolicy)
	if err != nil {
		t.Fatal(err)
	}
	sys := core.NewSystem()
	if err := compiled.Apply(sys, nil); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(sys,
		WithAdmin(),
		WithReplicaSource(replica.NewSource(sys)),
		WithWatchMaxWait(500*time.Millisecond)))
	t.Cleanup(srv.Close)
	return srv, sys
}

func newHTTPServer(t *testing.T, h http.Handler) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}

func TestReplicaSnapshotEndpoint(t *testing.T) {
	srv, sys := newTestServerWithSource(t)
	client := NewClient(srv.URL, srv.Client())
	snap, err := client.ReplicaSnapshot(context.Background())
	if err != nil {
		t.Fatalf("ReplicaSnapshot: %v", err)
	}
	if snap.Epoch == "" {
		t.Fatal("snapshot missing epoch")
	}
	if snap.Generation != sys.Generation() {
		t.Fatalf("snapshot generation %d != system %d", snap.Generation, sys.Generation())
	}
	if len(snap.State.Permissions) == 0 {
		t.Fatal("snapshot state empty")
	}
}

func TestReplicaWatchLongPoll(t *testing.T) {
	srv, sys := newTestServerWithSource(t)
	client := NewClient(srv.URL, srv.Client())
	ctx := context.Background()

	snap, err := client.ReplicaSnapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// A watch behind the current generation returns immediately.
	resp, err := client.ReplicaWatch(ctx, snap.Epoch, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Generation != snap.Generation || resp.Epoch != snap.Epoch {
		t.Fatalf("watch behind = %+v, want generation %d", resp, snap.Generation)
	}

	// A watch at the current generation blocks until a mutation lands.
	type result struct {
		resp replica.WatchResponse
		err  error
	}
	done := make(chan result, 1)
	go func() {
		r, err := client.ReplicaWatch(ctx, snap.Epoch, snap.Generation)
		done <- result{r, err}
	}()
	select {
	case r := <-done:
		t.Fatalf("watch returned %+v before any mutation", r)
	case <-time.After(100 * time.Millisecond):
	}
	if err := sys.AddSubject("newcomer"); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.resp.Generation <= snap.Generation {
			t.Fatalf("watch woke at stale generation %d", r.resp.Generation)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch did not wake on mutation")
	}

	// A foreign epoch never blocks, however large its generation claim.
	resp, err = client.ReplicaWatch(ctx, "some-old-epoch", 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Epoch != snap.Epoch {
		t.Fatalf("watch under foreign epoch reported epoch %q", resp.Epoch)
	}
}

// TestReplicaWatchHonorsClientWait: ?wait= shortens the poll below the
// server's cap, so followers can get keepalives inside a tight staleness
// bound even from a primary configured with a long cap.
func TestReplicaWatchHonorsClientWait(t *testing.T) {
	compiled, err := policy.Compile(serverPolicy)
	if err != nil {
		t.Fatal(err)
	}
	sys := core.NewSystem()
	if err := compiled.Apply(sys, nil); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(sys,
		WithReplicaSource(replica.NewSource(sys)),
		WithWatchMaxWait(time.Minute)))
	t.Cleanup(srv.Close)

	snap, err := NewClient(srv.URL, srv.Client()).ReplicaSnapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, err := srv.Client().Get(srv.URL + replica.WatchPath +
		"?epoch=" + snap.Epoch +
		"&after=" + strconv.FormatUint(snap.Generation, 10) +
		"&wait=100ms")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("watch with wait=100ms held for %v under a 1m server cap", elapsed)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
}

func TestReplicaWatchBadWait(t *testing.T) {
	srv, _ := newTestServerWithSource(t)
	resp, err := srv.Client().Get(srv.URL + replica.WatchPath + "?wait=-3s")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestReplicaWatchBadAfter(t *testing.T) {
	srv, _ := newTestServerWithSource(t)
	resp, err := srv.Client().Get(srv.URL + replica.WatchPath + "?after=banana")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

// newFollowerServer builds a primary+follower pair over httptest and
// returns the follower's test server plus its Follower.
func newFollowerServer(t *testing.T, opts ...replica.FollowerOption) (primary *core.System, follower *replica.Follower, followerURL string, hc *http.Client) {
	t.Helper()
	primarySrv, primarySys := newTestServerWithSource(t)

	followerSys := core.NewSystem()
	base := []replica.FollowerOption{
		replica.WithBackoff(time.Millisecond, 10*time.Millisecond),
	}
	f := replica.NewFollower(followerSys, primarySrv.URL, append(base, opts...)...)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go func() { _ = f.Run(ctx) }()

	fsrv := newHTTPServer(t, NewServer(followerSys, WithFollower(f)))
	deadline := time.Now().Add(5 * time.Second)
	for f.Stats().Syncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("follower never synced")
		}
		time.Sleep(time.Millisecond)
	}
	return primarySys, f, fsrv.URL, fsrv.Client()
}

func TestFollowerServerRedirectsMutations(t *testing.T) {
	primarySys, _, followerURL, hc := newFollowerServer(t)

	// A no-redirect client sees the 307 + error envelope.
	noRedirect := &http.Client{
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
	client := NewClient(followerURL, noRedirect)
	err := client.CreateRole(context.Background(), RoleRequest{ID: "r", Kind: "subject"})
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != http.StatusTemporaryRedirect {
		t.Fatalf("err = %v, want RemoteError{307}", err)
	}

	// The default client follows the 307 and administers the primary.
	following := NewClient(followerURL, hc)
	if err := following.CreateRole(context.Background(), RoleRequest{
		ID: "visiting-nurse", Kind: "subject",
	}); err != nil {
		t.Fatalf("redirected CreateRole: %v", err)
	}
	found := false
	for _, r := range primarySys.Roles(core.SubjectRole) {
		if r.ID == "visiting-nurse" {
			found = true
		}
	}
	if !found {
		t.Fatal("redirected mutation did not land on the primary")
	}
}

func TestFollowerServerServesDecisionsAndStats(t *testing.T) {
	primarySys, f, followerURL, hc := newFollowerServer(t)
	client := NewClient(followerURL, hc)
	ctx := context.Background()

	// Wait for convergence, then decide locally on the follower.
	deadline := time.Now().Add(5 * time.Second)
	for f.Stats().AppliedGeneration != primarySys.Generation() {
		if time.Now().After(deadline) {
			t.Fatal("follower did not converge")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := client.Decide(ctx, DecideRequest{
		Subject: "alice", Object: "tv", Transaction: "use",
		Environment: []string{"weekday-free-time"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Allowed {
		t.Fatalf("follower denied the replicated permit: %+v", resp)
	}
	if resp.Stale {
		t.Fatal("healthy follower marked its decision stale")
	}

	// Statsz carries the replication section with zero lag.
	st, err := client.Statsz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Replication == nil {
		t.Fatal("follower statsz missing replication section")
	}
	if st.Replication.Lag != 0 || st.Replication.Syncs == 0 {
		t.Fatalf("replication stats = %+v", st.Replication)
	}
	if !client.Healthy(ctx) {
		t.Fatal("converged follower reported unhealthy")
	}
}

func TestFollowerServerDegradesWhenStale(t *testing.T) {
	// A clock we can push past the staleness bound. Atomic: the sync loop
	// reads it concurrently.
	var offset atomic.Int64
	clock := func() time.Time { return time.Now().Add(time.Duration(offset.Load())) }
	_, f, followerURL, hc := newFollowerServer(t,
		replica.WithMaxStaleness(50*time.Millisecond),
		replica.WithFollowerClock(clock))
	client := NewClient(followerURL, hc)
	ctx := context.Background()

	offset.Store(int64(time.Hour)) // everything recorded is now ancient
	if !f.Stale() {
		t.Fatal("follower not stale after clock jump")
	}
	if client.Healthy(ctx) {
		t.Fatal("stale follower reported healthy")
	}
	resp, err := client.Decide(ctx, DecideRequest{
		Subject: "alice", Object: "tv", Transaction: "use",
		Environment: []string{"weekday-free-time"},
	})
	if err != nil {
		t.Fatalf("stale follower refused to serve: %v", err)
	}
	if !resp.Stale {
		t.Fatal("stale follower did not mark its decision")
	}
	if !resp.Allowed {
		t.Fatalf("stale follower changed the decision: %+v", resp)
	}
}
