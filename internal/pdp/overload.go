package pdp

import (
	"context"
	"math"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"
)

// limiter is the PDP's admission control: a max-inflight semaphore with a
// bounded wait. A request that cannot get a slot within the wait deadline
// is shed with 429 + Retry-After (or 503 when the client hung up first),
// so upstream balancers and retrying clients back off instead of piling
// onto a saturated decision engine — overload degrades to fast, honest
// rejections, never to unbounded queueing.
type limiter struct {
	sem        chan struct{}
	maxWait    time.Duration
	retryAfter string // precomputed Retry-After seconds hint
	inflight   atomic.Int64
	shed       atomic.Uint64
}

func newLimiter(n int, maxWait time.Duration) *limiter {
	if maxWait < 0 {
		maxWait = 0
	}
	// The retry hint is the admission wait rounded up: by then at least
	// one wait window has drained, so an immediate retry storm is pushed
	// past the current burst.
	secs := int(math.Ceil(maxWait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return &limiter{
		sem:        make(chan struct{}, n),
		maxWait:    maxWait,
		retryAfter: strconv.Itoa(secs),
	}
}

// acquire claims an admission slot, waiting up to maxWait. It returns the
// release func, or a nil release and the HTTP status the request should be
// shed with: 429 when the wait deadline expired (the server is saturated,
// retry later), 503 when the client's context ended while queued.
func (l *limiter) acquire(ctx context.Context) (release func(), status int) {
	select {
	case l.sem <- struct{}{}:
	default:
		t := time.NewTimer(l.maxWait)
		select {
		case l.sem <- struct{}{}:
			t.Stop()
		case <-t.C:
			l.shed.Add(1)
			return nil, http.StatusTooManyRequests
		case <-ctx.Done():
			t.Stop()
			l.shed.Add(1)
			return nil, http.StatusServiceUnavailable
		}
	}
	l.inflight.Add(1)
	return func() {
		l.inflight.Add(-1)
		<-l.sem
	}, 0
}

// WithMaxInflight bounds concurrent decision work (POST /v1/decide,
// /v1/decide/batch, /v1/check). Up to n requests mediate at once; further
// requests wait at most maxWait for a slot and are then shed with
// 429 Too Many Requests carrying a Retry-After hint (503 if the caller
// gave up while queued). Shed counts and the live inflight gauge are
// exported via GET /v1/statsz. n <= 0 disables admission control.
func WithMaxInflight(n int, maxWait time.Duration) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.limiter = newLimiter(n, maxWait)
		}
	}
}

// ServerStats is the "server" section of /v1/statsz: request-admission
// and fault-containment gauges.
type ServerStats struct {
	// InflightNow is the number of decision requests currently admitted.
	InflightNow int64 `json:"inflight_now"`
	// InflightLimit is the admission bound (0 = admission control off).
	InflightLimit int `json:"inflight_limit"`
	// Shed counts requests rejected by admission control (429 or 503).
	Shed uint64 `json:"shed"`
	// RecoveredPanics counts handler panics absorbed by the recovery
	// middleware instead of killing the server.
	RecoveredPanics uint64 `json:"recovered_panics"`
}

// serverStats snapshots the gauges.
func (s *Server) serverStats() ServerStats {
	st := ServerStats{RecoveredPanics: s.recovered.Load()}
	if s.limiter != nil {
		st.InflightNow = s.limiter.inflight.Load()
		st.InflightLimit = cap(s.limiter.sem)
		st.Shed = s.limiter.shed.Load()
	}
	return st
}

// trackingWriter remembers whether the handler already wrote — so the
// panic-recovery middleware knows if a 500 can still be sent cleanly —
// and which status it wrote, for the metrics and tracing middleware.
type trackingWriter struct {
	http.ResponseWriter
	wrote  bool
	status int // first status written; 0 until then
}

func (t *trackingWriter) WriteHeader(code int) {
	if !t.wrote {
		t.status = code
	}
	t.wrote = true
	t.ResponseWriter.WriteHeader(code)
}

func (t *trackingWriter) Write(b []byte) (int, error) {
	if !t.wrote {
		t.status = http.StatusOK
	}
	t.wrote = true
	return t.ResponseWriter.Write(b)
}

// Unwrap lets http.ResponseController (used by the replication watch
// handler for its long-poll write deadline) reach the real writer.
func (t *trackingWriter) Unwrap() http.ResponseWriter { return t.ResponseWriter }

// recoverPanic is the deferred tail of ServeHTTP: any handler panic is
// absorbed, counted, logged with its stack, and answered with a 500 if
// the response has not started — one poisoned request must never take the
// PDP down with it. http.ErrAbortHandler is the stdlib's deliberate
// abort signal and is re-raised for net/http to handle.
func (s *Server) recoverPanic(w *trackingWriter, r *http.Request) {
	p := recover()
	if p == nil {
		return
	}
	if p == http.ErrAbortHandler {
		panic(p)
	}
	s.recovered.Add(1)
	s.logger.Printf("pdp: recovered panic serving %s %s: %v\n%s",
		r.Method, r.URL.Path, p, debug.Stack())
	if !w.wrote {
		s.writeStatus(w, http.StatusInternalServerError, "internal error")
	}
}
