package pdp

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/aware-home/grbac/internal/core"
	"github.com/aware-home/grbac/internal/policy"
	"github.com/aware-home/grbac/internal/shard"
)

// sharedPolicy is the policy replicated to every shard: roles, objects,
// transactions, permissions — everything except subjects, which are
// partitioned across shards by the router.
const sharedPolicy = `
subject role family-member;
subject role child extends family-member;
object role entertainment-devices;
env role weekday-free-time;
object tv is entertainment-devices;
transaction use;
grant child use entertainment-devices when weekday-free-time;
`

// routerCluster is a router fronting n real shards, each a full
// pdp.Server over its own core.System with the shared policy applied.
type routerCluster struct {
	rt     *Router
	front  *httptest.Server // the router's HTTP face
	m      *shard.Map
	sys    map[string]*core.System     // shard ID → policy system
	shards map[string]*httptest.Server // shard ID → shard server
	client *Client                     // client pointed at the router
}

func newRouterCluster(t *testing.T, n int, opts ...RouterOption) *routerCluster {
	t.Helper()
	compiled, err := policy.Compile(sharedPolicy)
	if err != nil {
		t.Fatal(err)
	}
	c := &routerCluster{
		sys:    make(map[string]*core.System, n),
		shards: make(map[string]*httptest.Server, n),
	}
	infos := make([]shard.Info, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("s%d", i)
		sys := core.NewSystem()
		if err := compiled.Apply(sys, nil); err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(NewServer(sys, WithAdmin()))
		t.Cleanup(srv.Close)
		c.sys[id] = sys
		c.shards[id] = srv
		infos[i] = shard.Info{ID: id, Addr: srv.URL}
	}
	c.m, err = shard.New(0, infos...)
	if err != nil {
		t.Fatal(err)
	}
	c.rt, err = NewRouter(c.m, opts...)
	if err != nil {
		t.Fatal(err)
	}
	c.front = httptest.NewServer(c.rt)
	t.Cleanup(c.front.Close)
	c.client = NewClient(c.front.URL, nil)
	return c
}

// addSubjects registers subjects through the router (which routes each to
// its owning shard) and returns them.
func (c *routerCluster) addSubjects(t *testing.T, n int) []string {
	t.Helper()
	ctx := context.Background()
	subs := make([]string, n)
	for i := range subs {
		subs[i] = fmt.Sprintf("subject-%03d", i)
		if err := c.client.UpsertSubject(ctx, BindingRequest{ID: subs[i], Roles: []string{"child"}}); err != nil {
			t.Fatalf("UpsertSubject(%s): %v", subs[i], err)
		}
	}
	return subs
}

func permitReq(sub string) DecideRequest {
	return DecideRequest{
		Subject: sub, Object: "tv", Transaction: "use",
		Environment: []string{"weekday-free-time"},
	}
}

// TestRouterPartitionsSubjects pins the tentpole invariant: every subject
// lands on exactly the shard the hash ring names, no shard holds another
// shard's subjects, and decisions through the router answer for all of
// them.
func TestRouterPartitionsSubjects(t *testing.T) {
	c := newRouterCluster(t, 4)
	subs := c.addSubjects(t, 48)
	ctx := context.Background()

	shardsHit := map[string]bool{}
	for _, sub := range subs {
		owner := c.m.Owner(sub).ID
		shardsHit[owner] = true
		// The subject must exist on its owner and nowhere else.
		for id, sys := range c.sys {
			found := false
			for _, s := range sys.SubjectsInRole("child") {
				if string(s) == sub {
					found = true
					break
				}
			}
			if found != (id == owner) {
				t.Fatalf("subject %s on shard %s: found=%v, owner=%s", sub, id, found, owner)
			}
		}
		resp, err := c.client.Decide(ctx, permitReq(sub))
		if err != nil {
			t.Fatalf("Decide(%s) through router: %v", sub, err)
		}
		if !resp.Allowed {
			t.Fatalf("Decide(%s) = %+v, want allowed", sub, resp)
		}
	}
	if len(shardsHit) != 4 {
		t.Fatalf("48 subjects spread over only %d/4 shards", len(shardsHit))
	}
}

// TestRouterSessionLifecycle pins the shard-qualified session contract:
// the router returns "<shard>/<local>" IDs, and every session-scoped call
// routes by the qualifier with the local ID restored.
func TestRouterSessionLifecycle(t *testing.T) {
	c := newRouterCluster(t, 3)
	subs := c.addSubjects(t, 6)
	ctx := context.Background()

	for _, sub := range subs {
		sid, err := c.client.OpenSession(ctx, sub)
		if err != nil {
			t.Fatalf("OpenSession(%s): %v", sub, err)
		}
		shardID, local, ok := shard.SplitSession(sid)
		if !ok {
			t.Fatalf("session %q is not shard-qualified", sid)
		}
		if want := c.m.Owner(sub).ID; shardID != want {
			t.Fatalf("session %q qualified with %s, owner is %s", sid, shardID, want)
		}
		if !strings.HasPrefix(local, "sess-") {
			t.Fatalf("local session ID %q lost its shard-local form", local)
		}

		// Fresh session, no active roles: deny (§4.1.2 least privilege).
		ok2, err := c.client.Check(ctx, DecideRequest{
			Subject: sub, Session: sid, Object: "tv", Transaction: "use",
			Environment: []string{"weekday-free-time"},
		})
		if err != nil {
			t.Fatalf("Check(session %s): %v", sid, err)
		}
		if ok2 {
			t.Fatal("session with no active roles permitted")
		}
		if err := c.client.SetSessionRole(ctx, sid, "child", true); err != nil {
			t.Fatalf("SetSessionRole(%s): %v", sid, err)
		}
		ok2, err = c.client.Check(ctx, DecideRequest{
			Subject: sub, Session: sid, Object: "tv", Transaction: "use",
			Environment: []string{"weekday-free-time"},
		})
		if err != nil || !ok2 {
			t.Fatalf("Check(session %s, child active) = %v, %v, want permit", sid, ok2, err)
		}
		if err := c.client.CloseSession(ctx, sid); err != nil {
			t.Fatalf("CloseSession(%s): %v", sid, err)
		}
		if _, err := c.client.Check(ctx, DecideRequest{
			Subject: sub, Session: sid, Object: "tv", Transaction: "use",
		}); err == nil {
			t.Fatal("closed session still decides")
		}
	}

	// Bad session IDs are typed client errors, not shard calls: no
	// qualifier at all is a malformed request (400); an empty or unknown
	// qualifier names a session that does not exist here (404), and must
	// never fall through to hash routing.
	for _, bad := range []struct {
		session string
		status  string
	}{
		{"sess-1-alice", "400"},
		{"ghost/sess-1-alice", "404"},
		{"/sess-1-alice", "404"},
	} {
		_, err := c.client.Check(ctx, DecideRequest{Subject: subs[0], Session: bad.session, Object: "tv", Transaction: "use"})
		if err == nil || !strings.Contains(err.Error(), bad.status) {
			t.Fatalf("Check(session %q) = %v, want %s", bad.session, err, bad.status)
		}
	}
}

// TestRouterBroadcastAdmin pins that shared-policy mutations reach every
// shard: a role granted through the router is decidable on all shards.
func TestRouterBroadcastAdmin(t *testing.T) {
	c := newRouterCluster(t, 3)
	ctx := context.Background()

	if err := c.client.CreateRole(ctx, RoleRequest{ID: "guest", Kind: "subject"}); err != nil {
		t.Fatalf("CreateRole through router: %v", err)
	}
	if err := c.client.CreateTransaction(ctx, TransactionRequest{ID: "view"}); err != nil {
		t.Fatalf("CreateTransaction through router: %v", err)
	}
	if err := c.client.GrantPermission(ctx, PermissionRequest{
		Subject: "guest", Object: "entertainment-devices", Transaction: "view",
		Environment: "weekday-free-time", Effect: "permit",
	}); err != nil {
		t.Fatalf("GrantPermission through router: %v", err)
	}
	// Every shard must now hold the new policy: a guest subject placed on
	// any shard gets the permission.
	for id, sys := range c.sys {
		if err := sys.AddSubject(core.SubjectID("probe-" + id)); err != nil {
			t.Fatal(err)
		}
		if err := sys.AssignSubjectRole(core.SubjectID("probe-"+id), "guest"); err != nil {
			t.Fatalf("shard %s missing broadcast role: %v", id, err)
		}
		allowed, err := sys.CheckAccess(core.Request{
			Subject: core.SubjectID("probe-" + id), Object: "tv", Transaction: "view",
			Environment: []core.RoleID{"weekday-free-time"},
		})
		if err != nil || !allowed {
			t.Fatalf("shard %s: broadcast permission not decidable: %v %v", id, allowed, err)
		}
	}
}

// TestRouterScatterSubjectsInRole pins the scatter-union contract: the
// router's answer is the union of every shard's partition, sorted.
func TestRouterScatterSubjectsInRole(t *testing.T) {
	c := newRouterCluster(t, 4)
	subs := c.addSubjects(t, 32)

	resp, err := http.Get(c.front.URL + "/v1/query/subjects-in-role?role=child")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scatter status = %d", resp.StatusCode)
	}
	var out ScatterSubjectsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Partial {
		t.Fatal("healthy cluster answered partial")
	}
	want := append([]string(nil), subs...)
	sort.Strings(want)
	if len(out.Subjects) != len(want) {
		t.Fatalf("union has %d subjects, want %d", len(out.Subjects), len(want))
	}
	for i := range want {
		if out.Subjects[i] != want[i] {
			t.Fatalf("union[%d] = %q, want %q", i, out.Subjects[i], want[i])
		}
	}

	// who-can unions the same way.
	got, err := c.client.WhoCan(context.Background(), "use", "tv", []string{"weekday-free-time"})
	if err != nil {
		t.Fatalf("WhoCan through router: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("who-can union = %d subjects, want %d", len(got), len(want))
	}
}

// TestRouterBatchSplitsAndMerges pins DecideBatch semantics: requests
// grouped per owning shard, dispatched concurrently, merged back in
// request order.
func TestRouterBatchSplitsAndMerges(t *testing.T) {
	c := newRouterCluster(t, 4)
	subs := c.addSubjects(t, 24)
	ctx := context.Background()

	reqs := make([]DecideRequest, 0, len(subs)+1)
	for i, sub := range subs {
		r := permitReq(sub)
		if i%3 == 2 {
			r.Environment = []string{} // outside the window → deny
		}
		reqs = append(reqs, r)
	}
	reqs = append(reqs, permitReq("nobody")) // unknown subject → item error

	resp, err := c.client.DecideBatch(ctx, reqs)
	if err != nil {
		t.Fatalf("DecideBatch through router: %v", err)
	}
	if len(resp.Results) != len(reqs) {
		t.Fatalf("results = %d, want %d", len(resp.Results), len(reqs))
	}
	for i, item := range resp.Results[:len(subs)] {
		if item.Error != "" {
			t.Fatalf("item %d (%s): unexpected error %q", i, subs[i], item.Error)
		}
		wantAllow := i%3 != 2
		if item.Decision == nil || item.Decision.Allowed != wantAllow {
			t.Fatalf("item %d (%s) = %+v, want allowed=%v — merge broke request order",
				i, subs[i], item.Decision, wantAllow)
		}
	}
	if last := resp.Results[len(reqs)-1]; last.Error == "" {
		t.Fatalf("unknown subject item = %+v, want error", last)
	}
}

// TestRouterShardDown pins partial-failure semantics when a shard is
// unreachable: strict scatters fail loudly naming the shard, allow_partial
// degrades to the reachable union, batches fail only the dead shard's
// items, and single decides relay a typed 502.
func TestRouterShardDown(t *testing.T) {
	c := newRouterCluster(t, 4)
	subs := c.addSubjects(t, 32)
	ctx := context.Background()

	// Kill one shard that owns at least one subject.
	victim := c.m.Owner(subs[0]).ID
	c.shards[victim].Close()
	var deadSubs, liveSubs []string
	for _, sub := range subs {
		if c.m.Owner(sub).ID == victim {
			deadSubs = append(deadSubs, sub)
		} else {
			liveSubs = append(liveSubs, sub)
		}
	}

	// Strict scatter: 502 with the dead shard named.
	resp, err := http.Get(c.front.URL + "/v1/query/subjects-in-role?role=child")
	if err != nil {
		t.Fatal(err)
	}
	var strict ShardErrorsResponse
	if err := json.NewDecoder(resp.Body).Decode(&strict); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("strict scatter with dead shard = %d, want 502", resp.StatusCode)
	}
	if _, named := strict.ShardErrors[victim]; !named || len(strict.ShardErrors) != 1 {
		t.Fatalf("shard_errors = %v, want exactly %q", strict.ShardErrors, victim)
	}

	// allow_partial: 200 with the live union and the failure disclosed.
	resp, err = http.Get(c.front.URL + "/v1/query/subjects-in-role?role=child&allow_partial=1")
	if err != nil {
		t.Fatal(err)
	}
	var partial ScatterSubjectsResponse
	if err := json.NewDecoder(resp.Body).Decode(&partial); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("allow_partial scatter = %d, want 200", resp.StatusCode)
	}
	if !partial.Partial {
		t.Fatal("degraded answer not marked partial")
	}
	if len(partial.Subjects) != len(liveSubs) {
		t.Fatalf("partial union = %d subjects, want %d (live shards only)",
			len(partial.Subjects), len(liveSubs))
	}
	if _, named := partial.ShardErrors[victim]; !named {
		t.Fatalf("partial reply does not disclose dead shard: %v", partial.ShardErrors)
	}

	// Batch: dead shard's items carry typed errors, the rest answer, order
	// preserved.
	reqs := make([]DecideRequest, len(subs))
	for i, sub := range subs {
		reqs[i] = permitReq(sub)
	}
	bresp, err := c.client.DecideBatch(ctx, reqs)
	if err != nil {
		t.Fatalf("DecideBatch with dead shard: %v", err)
	}
	for i, item := range bresp.Results {
		dead := c.m.Owner(subs[i]).ID == victim
		if dead {
			if item.Error == "" || !strings.Contains(item.Error, "shard "+victim) {
				t.Fatalf("item %d (%s, dead shard) error = %q, want typed shard error", i, subs[i], item.Error)
			}
		} else if item.Error != "" || item.Decision == nil || !item.Decision.Allowed {
			t.Fatalf("item %d (%s, live shard) = %+v %q, want permit", i, subs[i], item.Decision, item.Error)
		}
	}

	// Single decide to the dead shard: typed 502 naming it.
	_, err = c.client.Decide(ctx, permitReq(deadSubs[0]))
	if err == nil || !strings.Contains(err.Error(), "502") {
		t.Fatalf("Decide to dead shard = %v, want 502", err)
	}
	// Live shards unaffected.
	if _, err := c.client.Decide(ctx, permitReq(liveSubs[0])); err != nil {
		t.Fatalf("Decide to live shard with peer down: %v", err)
	}

	// Aggregate health: degraded, dead shard named.
	resp, err = http.Get(c.front.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health RouterHealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || health.Status != "degraded" {
		t.Fatalf("healthz with dead shard = %d %q, want 503 degraded", resp.StatusCode, health.Status)
	}
	if health.Shards[victim] != "unreachable" {
		t.Fatalf("healthz shards = %v, want %s unreachable", health.Shards, victim)
	}
}

// TestRouterSlowShardBoundedLatency pins the per-shard deadline: one
// stalled shard costs the scatter one timeout, not an unbounded hang, and
// goroutines drain afterwards.
func TestRouterSlowShardBoundedLatency(t *testing.T) {
	compiled, err := policy.Compile(sharedPolicy)
	if err != nil {
		t.Fatal(err)
	}
	sys := core.NewSystem()
	if err := compiled.Apply(sys, nil); err != nil {
		t.Fatal(err)
	}
	fast := httptest.NewServer(NewServer(sys, WithAdmin()))
	defer fast.Close()

	release := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(release) })
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // stall until the test finishes
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer slow.Close()

	m, err := shard.New(0,
		shard.Info{ID: "fast", Addr: fast.URL},
		shard.Info{ID: "slow", Addr: slow.URL},
	)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRouter(m, WithShardTimeout(150*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt)
	defer front.Close()

	before := runtime.NumGoroutine()
	start := time.Now()
	resp, err := http.Get(front.URL + "/v1/query/subjects-in-role?role=child&allow_partial=1")
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	var out ScatterSubjectsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !out.Partial {
		t.Fatalf("scatter with stalled shard = %d partial=%v, want 200 partial", resp.StatusCode, out.Partial)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("scatter took %v — stalled shard was not bounded by the 150ms deadline", elapsed)
	}
	if _, named := out.ShardErrors["slow"]; !named {
		t.Fatalf("shard_errors = %v, want slow named", out.ShardErrors)
	}

	// Repeat a few times, then verify no goroutine pile-up: every timed-out
	// shard call must release its goroutine.
	for i := 0; i < 8; i++ {
		r, err := http.Get(front.URL + "/v1/query/subjects-in-role?role=child&allow_partial=1")
		if err != nil {
			t.Fatal(err)
		}
		_ = json.NewDecoder(r.Body).Decode(&ScatterSubjectsResponse{})
		r.Body.Close()
	}
	once.Do(func() { close(release) })
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+4 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines grew %d → %d after scatter timeouts", before, runtime.NumGoroutine())
}

// TestRouterSetMapVersioning pins the map-swap contract: only strictly
// newer versions install, and the served map reflects the swap.
func TestRouterSetMapVersioning(t *testing.T) {
	c := newRouterCluster(t, 2)

	if err := c.rt.SetMap(c.m); err == nil {
		t.Fatal("re-installing the active version must be rejected")
	}
	grown, err := c.m.Add(shard.Info{ID: "s9", Addr: c.shards["s0"].URL})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.rt.SetMap(grown); err != nil {
		t.Fatalf("SetMap(v%d): %v", grown.Version(), err)
	}
	if err := c.rt.SetMap(c.m); err == nil {
		t.Fatal("rolling back to an older map version must be rejected")
	}

	resp, err := http.Get(c.front.URL + ShardMapPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var w shard.Wire
	if err := json.NewDecoder(resp.Body).Decode(&w); err != nil {
		t.Fatal(err)
	}
	if w.Version != grown.Version() || len(w.Shards) != 3 {
		t.Fatalf("served map = v%d/%d shards, want v%d/3", w.Version, len(w.Shards), grown.Version())
	}
}
