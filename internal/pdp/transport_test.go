package pdp

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
)

// TestPooledTransportConfig pins the pool sizing of the shared transport.
// The regression this guards: http.DefaultTransport keeps only 2 idle
// connections per host (DefaultMaxIdleConnsPerHost), so a router or SDK
// fanning 8+ concurrent calls at one shard would tear down and re-dial
// almost every connection between bursts.
func TestPooledTransportConfig(t *testing.T) {
	hc := PooledHTTPClient()
	tr, ok := hc.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("pooled client transport is %T, want *http.Transport", hc.Transport)
	}
	if tr.MaxIdleConnsPerHost <= http.DefaultMaxIdleConnsPerHost {
		t.Fatalf("MaxIdleConnsPerHost = %d, must exceed the default %d",
			tr.MaxIdleConnsPerHost, http.DefaultMaxIdleConnsPerHost)
	}
	if tr.MaxIdleConnsPerHost < 64 {
		t.Fatalf("MaxIdleConnsPerHost = %d, want ≥ 64 for scatter fan-out", tr.MaxIdleConnsPerHost)
	}
	if tr.MaxConnsPerHost == 0 || tr.MaxConnsPerHost < tr.MaxIdleConnsPerHost {
		t.Fatalf("MaxConnsPerHost = %d, want a bound ≥ MaxIdleConnsPerHost %d",
			tr.MaxConnsPerHost, tr.MaxIdleConnsPerHost)
	}
	if tr.MaxIdleConns < tr.MaxIdleConnsPerHost {
		t.Fatalf("MaxIdleConns = %d < per-host %d", tr.MaxIdleConns, tr.MaxIdleConnsPerHost)
	}
	// NewClient with a nil http.Client must pick the pooled transport, not
	// http.DefaultClient.
	c := NewClient("http://example.invalid", nil)
	if c.http != pooledHTTPClient {
		t.Fatal("NewClient(nil) did not select the pooled HTTP client")
	}
	if PooledHTTPClient() != pooledHTTPClient {
		t.Fatal("PooledHTTPClient must return the shared instance")
	}
}

// TestConnectionReuseAcrossBursts proves connections are actually reused:
// repeated concurrent bursts against one server must ride kept-alive
// connections, not dial per request. Under the pre-pool default (2 idle
// conns/host) each 8-wide burst discarded 6 connections and the next
// burst re-dialed them.
func TestConnectionReuseAcrossBursts(t *testing.T) {
	var conns atomic.Int64
	srv := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"ok"}`))
	}))
	srv.Config.ConnState = func(c net.Conn, s http.ConnState) {
		if s == http.StateNew {
			conns.Add(1)
		}
	}
	srv.Start()
	defer srv.Close()

	// A dedicated pooled transport so parallel tests can't share its conns.
	hc := &http.Client{Transport: PooledHTTPClient().Transport.(*http.Transport).Clone()}
	client := NewClient(srv.URL, hc)
	ctx := context.Background()

	const bursts, width = 4, 8
	for b := 0; b < bursts; b++ {
		var wg sync.WaitGroup
		for i := 0; i < width; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if !client.Healthy(ctx) {
					t.Error("health probe failed")
				}
			}()
		}
		wg.Wait()
	}

	total := conns.Load()
	if total > width {
		t.Fatalf("%d bursts × %d requests opened %d connections — pool is not reusing (want ≤ %d)",
			bursts, width, total, width)
	}
	if total == 0 {
		t.Fatal("no connections observed — test wiring broken")
	}
	t.Logf("%d requests over %d connections", bursts*width, total)
}
