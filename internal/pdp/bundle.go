package pdp

import (
	"context"
	"errors"
	"io"
	"net/http"

	"github.com/aware-home/grbac/internal/bundle"
)

// BundlePath activates a signed policy bundle: POST the bundle JSON and
// the node verifies signature and revision before swapping its policy.
// Mounted only on nodes built with a bundle verifier; notably it is NOT
// a follower-redirected mutation path, because bundle distribution is
// push-based — whoever delivers the bundle proves provenance with the
// signature, not with which node it happened to reach first.
const BundlePath = "/v1/bundle"

// BundleStatusPath reports the node's bundle trust state: trusted key
// fingerprint, active revision, admit/reject counters.
const BundleStatusPath = "/v1/bundle/status"

// maxBundleBytes bounds one bundle push. Bundles carry whole policy
// states, so the cap is far above maxBodyBytes but still finite.
const maxBundleBytes = 32 << 20

// WithBundleVerifier arms the server's bundle activation gate: it mounts
// POST /v1/bundle and GET /v1/bundle/status, and every pushed bundle
// must verify against v's trusted key and advance its revision before
// the server replaces its policy. Unsigned and tampered bundles answer
// 403, stale revisions 409 — all before the policy store is touched.
func WithBundleVerifier(v *bundle.Verifier) ServerOption {
	return func(s *Server) { s.bundles = v }
}

// BundleActivateResponse is the POST /v1/bundle success reply.
type BundleActivateResponse struct {
	Status   string `json:"status"` // "activated"
	Revision uint64 `json:"revision"`
	KeyID    string `json:"key_id,omitempty"`
}

func (s *Server) handleBundlePush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeStatus(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBundleBytes))
	if err != nil {
		s.writeStatus(w, http.StatusRequestEntityTooLarge, "bundle too large or unreadable: "+err.Error())
		return
	}
	b, err := s.bundles.Admit(raw)
	if err != nil {
		s.writeStatus(w, bundleErrorStatus(err), err.Error())
		return
	}
	if err := s.sys.Replace(b.State); err != nil {
		// Verified but not installable (invalid policy content): the
		// revision stays fenced — re-shipping the same broken revision
		// would fail identically anyway.
		s.writeError(w, err)
		return
	}
	s.logger.Printf("pdp: activated policy bundle revision %d (key %s)", b.Manifest.Revision, b.Manifest.KeyID)
	s.writeJSON(w, http.StatusOK, BundleActivateResponse{
		Status: "activated", Revision: b.Manifest.Revision, KeyID: b.Manifest.KeyID,
	})
}

func (s *Server) handleBundleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeStatus(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.writeJSON(w, http.StatusOK, s.bundles.Status())
}

// bundleErrorStatus maps the bundle package's typed verification errors
// onto the wire: provenance failures are 403 (the content is not
// trusted), stale revisions are 409 (trusted key, fenced version), and
// anything else is a malformed request.
func bundleErrorStatus(err error) int {
	switch {
	case errors.Is(err, bundle.ErrUnsigned), errors.Is(err, bundle.ErrBadSignature):
		return http.StatusForbidden
	case errors.Is(err, bundle.ErrStale):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

// PushBundle ships a raw signed bundle to the node and returns its
// activation reply. The bytes are sent verbatim — re-encoding a signed
// artifact could perturb the signed payload.
func (c *Client) PushBundle(ctx context.Context, raw []byte) (BundleActivateResponse, error) {
	var resp BundleActivateResponse
	err := c.Call(ctx, http.MethodPost, BundlePath, rawBody(raw), &resp)
	return resp, err
}

// BundleStatus fetches the node's bundle trust state.
func (c *Client) BundleStatus(ctx context.Context) (bundle.Status, error) {
	var st bundle.Status
	err := c.get(ctx, BundleStatusPath, &st)
	return st, err
}

// rawBody wraps pre-encoded JSON so Client.Call's marshal step passes it
// through untouched.
type rawBody []byte

func (b rawBody) MarshalJSON() ([]byte, error) { return b, nil }

// WithRouterBundleVerifier arms the routing tier's own bundle gate: the
// router verifies a pushed bundle against its trusted key first, then
// broadcasts the raw artifact to every shard — each of which re-verifies
// with its own verifier before activating. A tampered bundle dies at the
// router without a single shard call.
func WithRouterBundleVerifier(v *bundle.Verifier) RouterOption {
	return func(rt *Router) { rt.bundles = v }
}

func (rt *Router) handleBundlePush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST only"})
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBundleBytes))
	if err != nil {
		writeJSON(w, http.StatusRequestEntityTooLarge, ErrorResponse{Error: "bundle too large or unreadable: " + err.Error()})
		return
	}
	b, err := rt.bundles.Admit(raw)
	if err != nil {
		writeJSON(w, bundleErrorStatus(err), ErrorResponse{Error: err.Error()})
		return
	}
	v := rt.view.Load()
	errs := rt.broadcast(r, v, http.MethodPost, BundlePath, raw)
	if len(errs) > 0 {
		writeJSON(w, http.StatusBadGateway, ShardErrorsResponse{
			Error:       "bundle verified but activation failed on some shards",
			ShardErrors: errs,
		})
		return
	}
	rt.logger.Printf("pdp: router activated policy bundle revision %d on %d shards", b.Manifest.Revision, v.m.Len())
	writeJSON(w, http.StatusOK, BundleActivateResponse{
		Status: "activated", Revision: b.Manifest.Revision, KeyID: b.Manifest.KeyID,
	})
}

func (rt *Router) handleBundleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "GET only"})
		return
	}
	writeJSON(w, http.StatusOK, rt.bundles.Status())
}
