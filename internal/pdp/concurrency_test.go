package pdp

import (
	"context"
	"sync"
	"testing"
)

// TestConcurrentClients hammers the PDP with parallel decide/check/state
// requests; all must succeed with consistent answers.
func TestConcurrentClients(t *testing.T) {
	srv, _ := newTestServer(t)
	client := NewClient(srv.URL, srv.Client())
	ctx := context.Background()

	const workers = 8
	const perWorker = 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				switch (w + i) % 3 {
				case 0:
					ok, err := client.Check(ctx, DecideRequest{
						Subject: "alice", Object: "tv", Transaction: "use",
						Environment: []string{"weekday-free-time"},
					})
					if err != nil || !ok {
						t.Errorf("Check = %v, %v", ok, err)
						return
					}
				case 1:
					d, err := client.Decide(ctx, DecideRequest{
						Subject: "alice", Object: "tv", Transaction: "use",
					})
					if err != nil || d.Allowed {
						t.Errorf("Decide = %+v, %v (want deny: no env)", d, err)
						return
					}
				default:
					if _, err := client.State(ctx); err != nil {
						t.Errorf("State: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
