package pdp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/aware-home/grbac/internal/core"
	"github.com/aware-home/grbac/internal/faults"
	"github.com/aware-home/grbac/internal/shard"
)

// Shard-side subject migration. During an online rebalance the
// coordinator (internal/shard.Coordinator) drives each shard through
// these endpoints:
//
//	GET  /v1/migrate/subjects — list this shard's subject IDs
//	POST /v1/migrate/export   — export one subject's bundle
//	POST /v1/migrate/import   — idempotently restore a bundle
//	POST /v1/migrate/handoff  — start forwarding for moved subjects
//	POST /v1/migrate/complete — drop moved subjects, switch to redirects
//	GET  /v1/migrate/status   — current forwarding table
//
// Between handoff and complete the shard is in the dual-ownership
// window: it still receives traffic from routers holding the old map,
// but the moved subjects' state now lives on the new owner — so every
// subject-scoped request is transparently proxied there, and the old
// copy is never consulted again. After complete the subject is gone
// locally and single-request callers get a typed 421 redirect carrying
// the new owner and map version, which routers and SDK clients use to
// refresh their map and retry.
const (
	MigrateSubjectsPath = "/v1/migrate/subjects"
	MigrateExportPath   = "/v1/migrate/export"
	MigrateImportPath   = "/v1/migrate/import"
	MigrateHandoffPath  = "/v1/migrate/handoff"
	MigrateCompletePath = "/v1/migrate/complete"
	MigrateStatusPath   = "/v1/migrate/status"
)

// MigrateMove names one subject's new owner.
type MigrateMove struct {
	Subject string `json:"subject"`
	Shard   string `json:"shard"`
	Addr    string `json:"addr"`
}

// MigrateSubjectsResponse lists a shard's resident subject IDs.
type MigrateSubjectsResponse struct {
	Subjects []string `json:"subjects"`
}

// MigrateExportRequest asks for one subject's migration bundle.
type MigrateExportRequest struct {
	Subject string `json:"subject"`
}

// MigrateHandoffRequest installs forwarding entries for subjects whose
// state has been copied to their new owners (the dual-ownership window
// opens). MapVersion is the version the in-flight rebalance is moving to.
type MigrateHandoffRequest struct {
	MapVersion uint64        `json:"map_version"`
	Moves      []MigrateMove `json:"moves"`
}

// MigrateCompleteRequest removes moved subjects from this shard and
// flips their forwarding entries to redirect mode. Idempotent: subjects
// already removed are skipped, entries already redirecting stay so.
type MigrateCompleteRequest struct {
	MapVersion uint64        `json:"map_version"`
	Moves      []MigrateMove `json:"moves"`
}

// MigrateStatusEntry describes one forwarding-table entry.
type MigrateStatusEntry struct {
	Subject    string `json:"subject"`
	Shard      string `json:"shard"`
	Addr       string `json:"addr"`
	Redirect   bool   `json:"redirect"`
	MapVersion uint64 `json:"map_version"`
}

// MigrateStatusResponse is the forwarding-table summary.
type MigrateStatusResponse struct {
	Entries []MigrateStatusEntry `json:"entries,omitempty"`
}

// MovedInfo rides in a 421 ErrorResponse: the subject's current owner
// and the map version that placed it there, so the caller can refresh
// its shard map and re-route without a blind retry.
type MovedInfo struct {
	Subject    string `json:"subject,omitempty"`
	Shard      string `json:"shard"`
	Addr       string `json:"addr"`
	MapVersion uint64 `json:"map_version"`
}

// migrateEntry is one forwarding-table entry: where the subject went,
// and whether we proxy (dual-ownership window) or redirect (post-move).
type migrateEntry struct {
	target     shard.Info
	redirect   bool
	mapVersion uint64
}

// migrateTable is the immutable forwarding table; writers copy-on-write
// under migrationState.mu, readers do one atomic load. sessions maps
// shard-local session IDs of migrated subjects back to their subject so
// session-scoped requests keep routing after the local session records
// are gone.
type migrateTable struct {
	entries  map[string]migrateEntry
	sessions map[string]string
}

// migrationState hangs off the Server; its zero value (no table, no
// clients) costs the fast path a single nil-check atomic load.
type migrationState struct {
	table   atomic.Pointer[migrateTable]
	mu      sync.Mutex
	clients map[string]*Client
}

// clientFor returns the cached forwarding client for a new-owner addr.
func (m *migrationState) clientFor(addr string) *Client {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.clients[addr]; ok {
		return c
	}
	if m.clients == nil {
		m.clients = make(map[string]*Client)
	}
	c := NewClient(addr, nil, WithRetry(2, 50*time.Millisecond))
	m.clients[addr] = c
	return c
}

// update copy-on-writes the forwarding table.
func (m *migrationState) update(mutate func(t *migrateTable)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	next := &migrateTable{
		entries:  make(map[string]migrateEntry),
		sessions: make(map[string]string),
	}
	if cur := m.table.Load(); cur != nil {
		for k, v := range cur.entries {
			next.entries[k] = v
		}
		for k, v := range cur.sessions {
			next.sessions[k] = v
		}
	}
	mutate(next)
	m.table.Store(next)
}

// migrateFor resolves a request's subject (directly, or via its session)
// against the forwarding table. The common no-migration case is one
// atomic load and a nil check.
func (s *Server) migrateFor(subject, session string) (string, migrateEntry, bool) {
	t := s.migration.table.Load()
	if t == nil || len(t.entries) == 0 {
		return "", migrateEntry{}, false
	}
	if subject == "" && session != "" {
		if sub, ok := t.sessions[session]; ok {
			subject = sub
		} else if si, err := s.sys.Session(core.SessionID(session)); err == nil {
			subject = string(si.Subject)
		}
	}
	if subject == "" {
		return "", migrateEntry{}, false
	}
	e, ok := t.entries[subject]
	return subject, e, ok
}

// migrateForward proxies the (already decoded) request to the subject's
// new owner and relays the reply verbatim. in is the decoded request
// body to re-serialize (nil for GETs — the path+query carry everything).
func (s *Server) migrateForward(w http.ResponseWriter, r *http.Request, e migrateEntry, in any) {
	if err := faults.Inject(faults.MigrateForward); err != nil {
		s.writeStatus(w, http.StatusServiceUnavailable, "handoff forward failed: "+err.Error())
		return
	}
	path := r.URL.Path
	if r.URL.RawQuery != "" {
		path += "?" + r.URL.RawQuery
	}
	var raw json.RawMessage
	err := s.migration.clientFor(e.target.Addr).Call(r.Context(), r.Method, path, in, &raw)
	if err != nil {
		s.relayMigrateError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(raw)
}

// relayMigrateError maps a forwarding failure onto the reply: the new
// owner's own status and body pass through, transport failures become a
// 502 so the caller can tell "new owner said no" from "could not reach
// new owner".
func (s *Server) relayMigrateError(w http.ResponseWriter, err error) {
	var re *RemoteError
	if errors.As(err, &re) {
		body := ErrorResponse{Error: re.Message, Moved: re.Moved}
		if body.Error == "" {
			body.Error = fmt.Sprintf("new owner replied %d", re.Status)
		}
		s.writeJSON(w, re.Status, body)
		return
	}
	s.writeStatus(w, http.StatusBadGateway, "handoff forward: "+err.Error())
}

// migrateRedirect answers a single-subject request with the typed 421:
// the subject moved, here is its owner and the map version to catch up to.
func (s *Server) migrateRedirect(w http.ResponseWriter, subject string, e migrateEntry) {
	s.writeJSON(w, http.StatusMisdirectedRequest, ErrorResponse{
		Error: fmt.Sprintf("subject %q moved to shard %q (map v%d)", subject, e.target.ID, e.mapVersion),
		Moved: &MovedInfo{
			Subject:    subject,
			Shard:      e.target.ID,
			Addr:       e.target.Addr,
			MapVersion: e.mapVersion,
		},
	})
}

// migrateIntercept is the hook at the top of every subject-scoped
// handler: not-moved subjects fall through at the cost of one atomic
// load; moved subjects are proxied (handoff window) or redirected
// (post-complete). It reports whether it wrote the response.
func (s *Server) migrateIntercept(w http.ResponseWriter, r *http.Request, subject, session string, in any) bool {
	sub, e, ok := s.migrateFor(subject, session)
	if !ok {
		return false
	}
	if e.redirect {
		s.migrateRedirect(w, sub, e)
		return true
	}
	s.migrateForward(w, r, e, in)
	return true
}

// migrateBatch mediates the batch items that belong to migrated subjects
// on their new owners, grouped into one proxied sub-batch per owner. The
// returned slice aligns with reqs: nil entries stay locally mediated. A
// shard with no forwarding table returns nil outright (one atomic load).
func (s *Server) migrateBatch(ctx context.Context, reqs []DecideRequest) []*BatchItem {
	t := s.migration.table.Load()
	if t == nil || len(t.entries) == 0 {
		return nil
	}
	groups := make(map[string][]int)
	for i, dr := range reqs {
		if _, e, ok := s.migrateFor(dr.Subject, dr.Session); ok {
			groups[e.target.Addr] = append(groups[e.target.Addr], i)
		}
	}
	if len(groups) == 0 {
		return nil
	}
	out := make([]*BatchItem, len(reqs))
	for addr, idxs := range groups {
		sub := make([]DecideRequest, len(idxs))
		for j, i := range idxs {
			sub[j] = reqs[i]
		}
		fill := func(msg string) {
			for _, i := range idxs {
				out[i] = &BatchItem{Error: msg}
			}
		}
		if err := faults.Inject(faults.MigrateForward); err != nil {
			fill("handoff forward failed: " + err.Error())
			continue
		}
		resp, err := s.migration.clientFor(addr).DecideBatch(ctx, sub)
		if err != nil {
			fill("handoff forward failed: " + err.Error())
			continue
		}
		if len(resp.Results) != len(idxs) {
			fill("handoff forward failed: new owner returned a misaligned batch")
			continue
		}
		for j, i := range idxs {
			item := resp.Results[j]
			out[i] = &item
		}
	}
	return out
}

// registerMigrate mounts the migration endpoints; they ride the admin
// plane (a shard without admin cannot be rebalanced into or out of).
func (s *Server) registerMigrate(mux *http.ServeMux) {
	mux.HandleFunc(MigrateSubjectsPath, s.handleMigrateSubjects)
	mux.HandleFunc(MigrateExportPath, s.handleMigrateExport)
	mux.HandleFunc(MigrateImportPath, s.handleMigrateImport)
	mux.HandleFunc(MigrateHandoffPath, s.handleMigrateHandoff)
	mux.HandleFunc(MigrateCompletePath, s.handleMigrateComplete)
	mux.HandleFunc(MigrateStatusPath, s.handleMigrateStatus)
}

func (s *Server) handleMigrateSubjects(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeStatus(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	ids := s.sys.Subjects()
	resp := MigrateSubjectsResponse{Subjects: make([]string, 0, len(ids))}
	for _, id := range ids {
		resp.Subjects = append(resp.Subjects, string(id))
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMigrateExport(w http.ResponseWriter, r *http.Request) {
	var req MigrateExportRequest
	if !s.readBody(w, r, &req, http.MethodPost) {
		return
	}
	b, err := s.sys.ExportSubject(core.SubjectID(req.Subject))
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, b)
}

func (s *Server) handleMigrateImport(w http.ResponseWriter, r *http.Request) {
	var b core.SubjectBundle
	if !s.readBody(w, r, &b, http.MethodPost) {
		return
	}
	if err := s.sys.RestoreSubject(b); err != nil {
		s.writeError(w, err)
		return
	}
	// An import means this shard is (becoming) the subject's owner: a
	// stale forwarding entry from an earlier move in the other direction
	// must not shadow the live copy.
	s.migration.update(func(t *migrateTable) {
		delete(t.entries, string(b.Subject.ID))
		for _, si := range b.Sessions {
			delete(t.sessions, string(si.ID))
		}
	})
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMigrateHandoff(w http.ResponseWriter, r *http.Request) {
	var req MigrateHandoffRequest
	if !s.readBody(w, r, &req, http.MethodPost) {
		return
	}
	s.migration.update(func(t *migrateTable) {
		for _, mv := range req.Moves {
			// Re-running handoff after a crash must not demote an entry
			// that already progressed to redirect.
			if cur, ok := t.entries[mv.Subject]; ok && cur.redirect {
				continue
			}
			t.entries[mv.Subject] = migrateEntry{
				target:     shard.Info{ID: mv.Shard, Addr: mv.Addr},
				mapVersion: req.MapVersion,
			}
		}
	})
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMigrateComplete(w http.ResponseWriter, r *http.Request) {
	var req MigrateCompleteRequest
	if !s.readBody(w, r, &req, http.MethodPost) {
		return
	}
	for _, mv := range req.Moves {
		// Capture the subject's session IDs before RemoveSubject closes
		// them, so session-scoped calls keep resolving to the redirect.
		var sids []string
		if b, err := s.sys.ExportSubject(core.SubjectID(mv.Subject)); err == nil {
			for _, si := range b.Sessions {
				sids = append(sids, string(si.ID))
			}
			if err := s.sys.RemoveSubject(core.SubjectID(mv.Subject)); err != nil {
				s.writeError(w, err)
				return
			}
		}
		s.migration.update(func(t *migrateTable) {
			t.entries[mv.Subject] = migrateEntry{
				target:     shard.Info{ID: mv.Shard, Addr: mv.Addr},
				redirect:   true,
				mapVersion: req.MapVersion,
			}
			for _, sid := range sids {
				t.sessions[sid] = mv.Subject
			}
		})
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMigrateStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeStatus(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	var resp MigrateStatusResponse
	if t := s.migration.table.Load(); t != nil {
		for sub, e := range t.entries {
			resp.Entries = append(resp.Entries, MigrateStatusEntry{
				Subject:    sub,
				Shard:      e.target.ID,
				Addr:       e.target.Addr,
				Redirect:   e.redirect,
				MapVersion: e.mapVersion,
			})
		}
	}
	sortMigrateEntries(resp.Entries)
	s.writeJSON(w, http.StatusOK, resp)
}

func sortMigrateEntries(es []MigrateStatusEntry) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j].Subject < es[j-1].Subject; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

// MigrationNode adapts a Client into the coordinator's per-shard
// interface (shard.NodeClient): subject bundles stay opaque JSON so the
// shard package never imports core.
type MigrationNode struct {
	c *Client
}

// NewMigrationNode wraps the given addr's client for coordinator use.
func NewMigrationNode(addr string) *MigrationNode {
	return &MigrationNode{c: NewClient(addr, nil, WithRetry(3, 100*time.Millisecond))}
}

// Subjects lists the shard's resident subjects.
func (n *MigrationNode) Subjects(ctx context.Context) ([]string, error) {
	var resp MigrateSubjectsResponse
	if err := n.c.Call(ctx, http.MethodGet, MigrateSubjectsPath, nil, &resp); err != nil {
		return nil, err
	}
	return resp.Subjects, nil
}

// ExportSubject fetches one subject's bundle as opaque JSON.
func (n *MigrationNode) ExportSubject(ctx context.Context, subject string) (json.RawMessage, error) {
	var raw json.RawMessage
	err := n.c.Call(ctx, http.MethodPost, MigrateExportPath, MigrateExportRequest{Subject: subject}, &raw)
	return raw, err
}

// ImportSubject restores a bundle on the shard.
func (n *MigrationNode) ImportSubject(ctx context.Context, bundle json.RawMessage) error {
	return n.c.Call(ctx, http.MethodPost, MigrateImportPath, bundle, nil)
}

// Handoff opens the dual-ownership window for the given moves.
func (n *MigrationNode) Handoff(ctx context.Context, mapVersion uint64, moves []shard.Move) error {
	return n.c.Call(ctx, http.MethodPost, MigrateHandoffPath,
		MigrateHandoffRequest{MapVersion: mapVersion, Moves: fromShardMoves(moves)}, nil)
}

// Complete drops the moved subjects and switches to redirects.
func (n *MigrationNode) Complete(ctx context.Context, mapVersion uint64, moves []shard.Move) error {
	return n.c.Call(ctx, http.MethodPost, MigrateCompletePath,
		MigrateCompleteRequest{MapVersion: mapVersion, Moves: fromShardMoves(moves)}, nil)
}

// SetMap pushes a committed shard map to the shard's router surface; on
// plain shards it is a no-op (404 tolerated) — routers are the consumers.
func (n *MigrationNode) SetMap(ctx context.Context, w shard.Wire) error {
	return n.c.Call(ctx, http.MethodPut, ShardMapPath, w, nil)
}

func fromShardMoves(moves []shard.Move) []MigrateMove {
	out := make([]MigrateMove, 0, len(moves))
	for _, mv := range moves {
		out = append(out, MigrateMove{Subject: mv.Subject, Shard: mv.To.ID, Addr: mv.To.Addr})
	}
	return out
}
