package pdp

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// flakyServer answers with the status in mode (0 = 200 OK) and counts
// every request it sees.
type flakyServer struct {
	mode atomic.Int32
	hits atomic.Int32
	srv  *httptest.Server
}

func newFlakyServer(t *testing.T) *flakyServer {
	t.Helper()
	f := &flakyServer{}
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f.hits.Add(1)
		if code := int(f.mode.Load()); code != 0 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(code)
			w.Write([]byte(`{"error":"flaking"}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"allowed":true}`))
	}))
	t.Cleanup(f.srv.Close)
	return f
}

// TestRetryOn429 exercises satellite (b): a 429 shed is transient, so a
// retrying client rides out a shedding server and succeeds once capacity
// returns.
func TestRetryOn429(t *testing.T) {
	f := newFlakyServer(t)
	f.mode.Store(http.StatusTooManyRequests)
	client := NewClient(f.srv.URL, f.srv.Client(), WithRetry(4, time.Millisecond))

	// Flip the server healthy after the second shed.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for f.hits.Load() < 2 {
			time.Sleep(time.Millisecond)
		}
		f.mode.Store(0)
	}()

	ok, err := client.Check(context.Background(), DecideRequest{
		Subject: "alice", Object: "tv", Transaction: "use",
	})
	<-done
	if err != nil || !ok {
		t.Fatalf("Check through 429s = %v, %v", ok, err)
	}
	if n := f.hits.Load(); n < 3 {
		t.Fatalf("server saw %d requests, want >= 3 (two sheds + success)", n)
	}
}

// TestRetryAfterParsed checks the Retry-After header lands on RemoteError
// for both of its RFC 9110 shapes.
func TestRetryAfterParsed(t *testing.T) {
	header := atomic.Value{}
	header.Store("7")
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", header.Load().(string))
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	t.Cleanup(srv.Close)
	client := NewClient(srv.URL, srv.Client())

	_, err := client.Decide(context.Background(), DecideRequest{Object: "tv", Transaction: "use"})
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v", err)
	}
	if re.RetryAfter != 7*time.Second {
		t.Fatalf("RetryAfter = %v, want 7s", re.RetryAfter)
	}

	header.Store(time.Now().Add(30 * time.Second).UTC().Format(http.TimeFormat))
	_, err = client.Decide(context.Background(), DecideRequest{Object: "tv", Transaction: "use"})
	if !errors.As(err, &re) {
		t.Fatalf("err = %v", err)
	}
	if re.RetryAfter <= 0 || re.RetryAfter > 30*time.Second {
		t.Fatalf("RetryAfter from HTTP date = %v, want in (0, 30s]", re.RetryAfter)
	}
}

// TestRetrySleepHonorsRetryAfter: with a tiny backoff base but a 1s server
// hint, the retry must wait at least the hint.
func TestRetrySleepHonorsRetryAfter(t *testing.T) {
	if testing.Short() {
		t.Skip("1s sleep")
	}
	f := newFlakyServer(t)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if f.hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"allowed":true}`))
	}))
	t.Cleanup(srv.Close)
	client := NewClient(srv.URL, srv.Client(), WithRetry(2, time.Millisecond))

	start := time.Now()
	ok, err := client.Check(context.Background(), DecideRequest{Object: "tv", Transaction: "use"})
	if err != nil || !ok {
		t.Fatalf("Check = %v, %v", ok, err)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("retried after %v, want >= ~1s (Retry-After honored)", elapsed)
	}
}

// TestCircuitBreakerLifecycle drives closed → open → half-open → open →
// half-open → closed against a flaking server, checking fail-fast behavior
// and request counts at every step.
func TestCircuitBreakerLifecycle(t *testing.T) {
	f := newFlakyServer(t)
	f.mode.Store(http.StatusInternalServerError)
	const cooldown = 50 * time.Millisecond
	client := NewClient(f.srv.URL, f.srv.Client(), WithCircuitBreaker(2, cooldown))
	ctx := context.Background()
	req := DecideRequest{Subject: "alice", Object: "tv", Transaction: "use"}

	// Two transient failures trip the breaker.
	for i := 0; i < 2; i++ {
		if _, err := client.Decide(ctx, req); !errors.Is(err, ErrRemote) {
			t.Fatalf("attempt %d: err = %v, want remote error", i, err)
		}
	}
	if _, err := client.Decide(ctx, req); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open circuit: err = %v, want ErrCircuitOpen", err)
	}
	if n := f.hits.Load(); n != 2 {
		t.Fatalf("open circuit leaked a request: server saw %d, want 2", n)
	}

	// The window is jittered on [cooldown/2, 3*cooldown/2); wait it out.
	time.Sleep(cooldown*2 + 10*time.Millisecond)

	// Half-open probe against a still-failing server re-opens immediately.
	if _, err := client.Decide(ctx, req); !errors.Is(err, ErrRemote) {
		t.Fatalf("probe: err = %v, want remote error", err)
	}
	if _, err := client.Decide(ctx, req); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("after failed probe: err = %v, want ErrCircuitOpen", err)
	}
	if n := f.hits.Load(); n != 3 {
		t.Fatalf("server saw %d requests, want 3 (one probe)", n)
	}

	// Server recovers; the next probe closes the circuit for good.
	time.Sleep(cooldown*2 + 10*time.Millisecond)
	f.mode.Store(0)
	for i := 0; i < 2; i++ {
		if _, err := client.Decide(ctx, req); err != nil {
			t.Fatalf("recovered call %d: %v", i, err)
		}
	}
	if n := f.hits.Load(); n != 5 {
		t.Fatalf("server saw %d requests, want 5", n)
	}
}

// TestRetryAfterClamped proves a hostile or misconfigured Retry-After —
// an enormous delay-seconds value or an HTTP date years out — cannot push
// the hint past MaxRetryAfter, and that the clamp is surfaced on the
// RemoteError and in its rendering.
func TestRetryAfterClamped(t *testing.T) {
	cases := []struct {
		name   string
		header string
	}{
		{"huge-seconds", "99999999999"},
		{"overflow-seconds", "999999999999999999"},
		{"far-future-date", time.Now().Add(365 * 24 * time.Hour).UTC().Format(http.TimeFormat)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Retry-After", tc.header)
				w.WriteHeader(http.StatusServiceUnavailable)
			}))
			t.Cleanup(srv.Close)
			client := NewClient(srv.URL, srv.Client())
			_, err := client.Decide(context.Background(), DecideRequest{Object: "tv", Transaction: "use"})
			var re *RemoteError
			if !errors.As(err, &re) {
				t.Fatalf("err = %v", err)
			}
			if re.RetryAfter != MaxRetryAfter {
				t.Fatalf("RetryAfter = %v, want clamped to %v", re.RetryAfter, MaxRetryAfter)
			}
			if !re.RetryAfterClamped {
				t.Fatal("RetryAfterClamped not set")
			}
			if !strings.Contains(re.Error(), "clamped") {
				t.Fatalf("Error() = %q, want the clamp surfaced", re.Error())
			}
		})
	}
	// Sane hints still pass through unclamped.
	d, clamped := parseRetryAfter("7")
	if d != 7*time.Second || clamped {
		t.Fatalf("parseRetryAfter(7) = %v, %v", d, clamped)
	}
	if d, clamped := parseRetryAfter("-3"); d != 0 || clamped {
		t.Fatalf("parseRetryAfter(-3) = %v, %v", d, clamped)
	}
}

// TestBreakerOptionClamps proves degenerate breaker settings are clamped
// into a working breaker instead of silently dropped or a rand.Int63n
// panic in trip: a zero/negative cooldown opens for the default window,
// and failures < 1 trips on the first transient failure.
func TestBreakerOptionClamps(t *testing.T) {
	c := NewClient("http://unused", nil, WithCircuitBreaker(0, -time.Second))
	if c.breaker == nil {
		t.Fatal("degenerate settings must still install a breaker")
	}
	if c.breaker.threshold != 1 || c.breaker.cooldown != defaultBreakerCooldown {
		t.Fatalf("breaker = threshold %d cooldown %v, want 1/%v",
			c.breaker.threshold, c.breaker.cooldown, defaultBreakerCooldown)
	}
	// trip must not panic even on a directly constructed degenerate
	// breaker, and the window must be positive.
	b := newBreaker(-5, 0)
	now := time.Now()
	b.failure(now, 0)
	if b.state != breakerOpen {
		t.Fatalf("state = %v after one failure with clamped threshold", b.state)
	}
	if !b.openUntil.After(now) {
		t.Fatal("open window is not in the future")
	}
	// The server hint still floors the window.
	b2 := newBreaker(1, time.Millisecond)
	b2.failure(now, 10*time.Second)
	if got := b2.openUntil.Sub(now); got < 10*time.Second {
		t.Fatalf("open window %v undercuts the 10s Retry-After floor", got)
	}
}

// TestRetryDelayCapped drives the backoff doubling far past maxRetryDelay
// and checks it saturates instead of overflowing into a negative delay
// (which would reach rand.Int63n as n <= 0 and panic).
func TestRetryDelayCapped(t *testing.T) {
	d := 100 * time.Millisecond
	for i := 0; i < 200; i++ {
		if d < maxRetryDelay {
			d *= 2
			if d > maxRetryDelay {
				d = maxRetryDelay
			}
		}
	}
	if d != maxRetryDelay {
		t.Fatalf("delay = %v after 200 doublings, want saturated at %v", d, maxRetryDelay)
	}
}
