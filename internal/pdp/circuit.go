package pdp

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// ErrCircuitOpen is returned (fail-fast, no network round trip) while the
// client's circuit breaker is open after repeated transient failures.
// Callers should fall back to a local default — for a PDP that means
// default deny — rather than queueing on a server that is down.
var ErrCircuitOpen = errors.New("pdp: circuit open")

// defaultBreakerCooldown replaces a non-positive cooldown passed to
// WithCircuitBreaker; maxRetryDelay caps the retry loop's exponential
// doubling.
const (
	defaultBreakerCooldown = time.Second
	maxRetryDelay          = 30 * time.Second
)

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is a classic three-state circuit breaker over the client's
// transient-failure signal. Closed counts consecutive transient failures;
// at the threshold it opens for a jittered cooldown window (extended to
// at least the server's Retry-After hint, when one was given). When the
// window lapses it half-opens: exactly one probe request goes through,
// and its outcome closes or re-opens the circuit.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	state     breakerState
	failures  int
	openUntil time.Time
	probing   bool
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	// WithCircuitBreaker clamps before calling, but a breaker constructed
	// directly must be safe too: trip feeds cooldown to rand.Int63n, which
	// panics on n <= 0.
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = defaultBreakerCooldown
	}
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a request may be attempted now. In the half-open
// state the first caller becomes the probe; concurrent callers fail fast
// until the probe reports back.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if now.Before(b.openUntil) {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	case breakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	default:
		return true
	}
}

// success records a definitive, non-transient outcome: the server is
// responsive, so the circuit closes and the failure streak resets.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.failures = 0
	b.probing = false
}

// failure records a transient failure. retryAfter, when positive, is the
// server's own back-off hint and puts a floor under the open window.
func (b *breaker) failure(now time.Time, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.probing = false
		b.trip(now, retryAfter)
		return
	}
	b.failures++
	if b.failures >= b.threshold {
		b.trip(now, retryAfter)
	}
}

// neutral records an outcome that says nothing about the server (the
// caller's context ended); it only releases a half-open probe slot.
func (b *breaker) neutral() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// trip opens the circuit. The window is jittered on [cooldown/2,
// 3*cooldown/2) so a fleet of breakers does not half-open in lockstep,
// and never undercuts the server's Retry-After hint. Caller holds the lock.
func (b *breaker) trip(now time.Time, retryAfter time.Duration) {
	b.state = breakerOpen
	b.failures = 0
	window := b.cooldown/2 + time.Duration(rand.Int63n(int64(b.cooldown)+1))
	if retryAfter > window {
		window = retryAfter
	}
	b.openUntil = now.Add(window)
}
