package pdp

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/aware-home/grbac/internal/core"
	"github.com/aware-home/grbac/internal/declog"
	"github.com/aware-home/grbac/internal/obs"
)

// CorrelationHeader carries the request correlation ID. A caller may send
// one; otherwise the server generates one. Either way the response echoes
// it, the audit record stores it, and the decision trace is keyed by it,
// so all three views of one request can be joined after the fact.
const CorrelationHeader = "X-Correlation-ID"

// WithMetrics exports the server's operational state on reg in the
// Prometheus text format at GET /metrics: per-route request latency
// histograms and status counters, the decision-cache and policy-engine
// counters System.Stats already maintains, admission-control gauges, and
// replication health when the server is a follower. Everything except the
// route histograms is a scrape-time read over existing atomics, so the
// decision hot path carries no new instrumentation.
func WithMetrics(reg *obs.Registry) ServerOption {
	return func(s *Server) { s.metrics = reg }
}

// WithTracer records one DecisionTrace per decision request — route,
// correlation ID, timed steps, status, outcome — into tr's bounded ring,
// served at GET /v1/traces. Tracing is per-request plumbing on the HTTP
// handlers only; a server built without a tracer pays nothing.
func WithTracer(tr *obs.Tracer) ServerOption {
	return func(s *Server) { s.tracer = tr }
}

// registerMetrics populates the registry. Called once from NewServer when
// the server was built WithMetrics.
func (s *Server) registerMetrics() {
	reg := s.metrics
	s.httpDur = reg.NewHistogramVec("grbac_http_request_duration_seconds",
		"PDP request handling time by route.", nil, "route")
	s.httpReqs = reg.NewCounterVec("grbac_http_requests_total",
		"PDP requests by route and status class.", "route", "code")

	// The decision engine's counters are scrape-time reads of the atomics
	// System.Stats keeps anyway — closures, not hot-path instruments.
	stat := func(read func(core.Stats) float64) func() float64 {
		return func() float64 { return read(s.sys.Stats()) }
	}
	reg.NewGaugeFunc("grbac_policy_generation",
		"Monotonic policy version; every mutation bumps it.",
		stat(func(st core.Stats) float64 { return float64(st.Generation) }))
	reg.NewCounterFunc("grbac_decision_cache_hits_total",
		"Decide calls answered from the decision cache.",
		stat(func(st core.Stats) float64 { return float64(st.DecisionHits) }))
	reg.NewCounterFunc("grbac_decision_cache_misses_total",
		"Decide calls that ran the full mediation rule.",
		stat(func(st core.Stats) float64 { return float64(st.DecisionMisses) }))
	reg.NewCounterFunc("grbac_decision_cache_evictions_total",
		"Cached decisions displaced by the capacity bound.",
		stat(func(st core.Stats) float64 { return float64(st.DecisionEvictions) }))
	reg.NewCounterFunc("grbac_policy_invalidations_total",
		"Policy generation bumps (each invalidates all cached decisions).",
		stat(func(st core.Stats) float64 { return float64(st.Invalidations) }))
	reg.NewCounterFunc("grbac_policy_snapshot_compiles_total",
		"Lazy policy-snapshot recompilations after mutations.",
		stat(func(st core.Stats) float64 { return float64(st.SnapshotCompiles) }))
	reg.NewCounterFunc("grbac_fail_safe_denies_total",
		"Denials issued because no mediation rule matched (fail-safe default).",
		stat(func(st core.Stats) float64 { return float64(st.FailSafeDenies) }))
	reg.NewGaugeFunc("grbac_decision_cache_entries",
		"Decisions currently cached.",
		stat(func(st core.Stats) float64 { return float64(st.DecisionEntries) }))

	reg.NewGaugeFunc("grbac_http_inflight",
		"Decision requests currently admitted.",
		func() float64 { return float64(s.serverStats().InflightNow) })
	reg.NewCounterFunc("grbac_http_shed_total",
		"Decision requests rejected by admission control (429 or 503).",
		func() float64 { return float64(s.serverStats().Shed) })
	reg.NewCounterFunc("grbac_http_recovered_panics_total",
		"Handler panics absorbed by the recovery middleware.",
		func() float64 { return float64(s.serverStats().RecoveredPanics) })
	if s.trail != nil {
		reg.NewCounterFunc("grbac_audit_records_total",
			"Decisions ever offered to the audit trail (retained or not).",
			func() float64 { return float64(s.trail.Seen()) })
		reg.NewCounterFunc("grbac_audit_evicted_total",
			"Audit records evicted by the ring's capacity bound — decisions no longer reconstructible locally.",
			func() float64 { return float64(s.trail.Evicted()) })
		reg.NewGaugeFunc("grbac_audit_retained",
			"Audit records currently held in the ring.",
			func() float64 { return float64(s.trail.Len()) })
	}
	if s.declog != nil {
		declog.RegisterMetrics(reg, s.declog)
	}
	if s.bundles != nil {
		reg.NewGaugeFunc("grbac_bundle_revision",
			"Revision of the last admitted policy bundle (0 before any).",
			func() float64 { return float64(s.bundles.Status().Revision) })
		reg.NewCounterFunc("grbac_bundle_admitted_total",
			"Policy bundles that verified and advanced the revision.",
			func() float64 { return float64(s.bundles.Status().Admitted) })
		reg.NewCounterFunc("grbac_bundle_rejected_total",
			"Policy bundles rejected: unsigned, tampered, or stale.",
			func() float64 { return float64(s.bundles.Status().Rejected) })
	}
	if s.tracer != nil {
		reg.NewCounterFunc("grbac_decision_traces_total",
			"Decision traces recorded (the ring retains only the newest).",
			func() float64 { return float64(s.tracer.Recorded()) })
	}
	if s.follower != nil {
		s.follower.RegisterMetrics(reg)
	}
}

// instrument wraps a handler with the route's latency histogram and
// status counter and, for decision routes (traced), the per-request
// decision tracer. With neither configured the handler is returned
// untouched, so an uninstrumented server serves exactly the old path.
func (s *Server) instrument(route string, traced bool, h http.HandlerFunc) http.HandlerFunc {
	traced = traced && s.tracer != nil
	var dur *obs.Histogram
	if s.metrics != nil {
		// Resolve the child once; the per-request work is one Observe.
		dur = s.httpDur.With(route)
	}
	if dur == nil && !traced {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		var rt *reqTrace
		if traced {
			rt = &reqTrace{}
			r = r.WithContext(context.WithValue(r.Context(), reqTraceKey{}, rt))
		}
		h(w, r)
		status := http.StatusOK
		if tw, ok := w.(*trackingWriter); ok && tw.status != 0 {
			status = tw.status
		}
		if dur != nil {
			dur.ObserveSince(start)
			s.httpReqs.With(route, statusClass(status)).Inc()
		}
		if rt != nil {
			s.tracer.Record(obs.DecisionTrace{
				CorrelationID:   w.Header().Get(CorrelationHeader),
				Route:           route,
				Start:           start,
				DurationSeconds: time.Since(start).Seconds(),
				Status:          status,
				Allowed:         rt.allowed,
				Stale:           rt.stale,
				Steps:           rt.steps,
			})
		}
	}
}

func statusClass(code int) string {
	return strconv.Itoa(code/100) + "xx"
}

// reqTrace accumulates the decision-specific trace fields while a handler
// runs; the instrument middleware stores one in the request context and
// records the finished trace afterwards. Methods are nil-safe so handlers
// call them unconditionally and an untraced request costs nothing extra.
type reqTrace struct {
	allowed *bool
	stale   bool
	steps   []obs.TraceStep
}

type reqTraceKey struct{}

// traceOf returns the request's trace carrier, or nil when untraced.
func traceOf(r *http.Request) *reqTrace {
	rt, _ := r.Context().Value(reqTraceKey{}).(*reqTrace)
	return rt
}

// step appends one timed phase, measured from start to now.
func (rt *reqTrace) step(name string, start time.Time) {
	if rt == nil {
		return
	}
	rt.steps = append(rt.steps, obs.TraceStep{
		Name:            name,
		DurationSeconds: time.Since(start).Seconds(),
	})
}

// decision records the request's outcome.
func (rt *reqTrace) decision(allowed, stale bool) {
	if rt == nil {
		return
	}
	rt.allowed = &allowed
	rt.stale = stale
}

// markStale records staleness for replies without a single boolean
// outcome (batches).
func (rt *reqTrace) markStale(stale bool) {
	if rt == nil {
		return
	}
	rt.stale = stale
}

// correlate resolves the request's correlation ID — the caller's
// CorrelationHeader when present, a fresh random one otherwise — and
// stamps it on the response headers before any body is written.
func (s *Server) correlate(w http.ResponseWriter, r *http.Request) string {
	id := r.Header.Get(CorrelationHeader)
	if id == "" {
		id = newCorrelationID()
	}
	w.Header().Set(CorrelationHeader, id)
	return id
}

var corrFallback atomic.Uint64

func newCorrelationID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively impossible; a process-local
		// sequence still yields usable (if guessable) join keys.
		return "seq-" + strconv.FormatUint(corrFallback.Add(1), 16)
	}
	return hex.EncodeToString(b[:])
}

// handleMetrics serves GET /metrics in the Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeStatus(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.metrics.WritePrometheus(w); err != nil {
		s.logger.Printf("pdp: write metrics: %v", err)
	}
}

// handleTraces serves the decision-trace ring:
// GET /v1/traces?limit=N&correlation_id=ID (newest first).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeStatus(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query()
	if id := q.Get("correlation_id"); id != "" {
		tr, ok := s.tracer.Find(id)
		if !ok {
			s.writeStatus(w, http.StatusNotFound, "no retained trace for correlation id "+id)
			return
		}
		s.writeJSON(w, http.StatusOK, []obs.DecisionTrace{tr})
		return
	}
	n := 0
	if lim := q.Get("limit"); lim != "" {
		v, err := strconv.Atoi(lim)
		if err != nil || v < 0 {
			s.writeStatus(w, http.StatusBadRequest, "bad limit")
			return
		}
		n = v
	}
	s.writeJSON(w, http.StatusOK, s.tracer.Recent(n))
}

// Metrics scrapes the server's GET /metrics exposition and parses it into
// samples; `grbacctl top` renders them.
func (c *Client) Metrics(ctx context.Context) ([]obs.Sample, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, fmt.Errorf("pdp: build request: %w", err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrTransport, err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		return nil, &RemoteError{Status: resp.StatusCode}
	}
	return obs.ParseText(resp.Body)
}

// Traces fetches the server's recent decision traces, newest first
// (limit <= 0 fetches all retained).
func (c *Client) Traces(ctx context.Context, limit int) ([]obs.DecisionTrace, error) {
	path := "/v1/traces"
	if limit > 0 {
		path += "?limit=" + strconv.Itoa(limit)
	}
	var out []obs.DecisionTrace
	err := c.get(ctx, path, &out)
	return out, err
}
