package pdp

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/aware-home/grbac/internal/audit"
	"github.com/aware-home/grbac/internal/obs"
)

// obsServer builds an instrumented PDP over the family-TV fixture with
// metrics, tracing, and an audit trail all enabled.
func obsServer(t *testing.T) (*httptest.Server, *Client, *audit.Logger, *obs.Tracer) {
	t.Helper()
	trail := audit.NewLogger()
	tracer := obs.NewTracer(16)
	ts, _ := newTestServer(t,
		WithMetrics(obs.NewRegistry()),
		WithTracer(tracer),
		WithAuditLogger(trail))
	return ts, NewClient(ts.URL, nil), trail, tracer
}

func TestMetricsEndpoint(t *testing.T) {
	_, client, _, _ := obsServer(t)
	ctx := context.Background()

	req := DecideRequest{Subject: "alice", Object: "tv", Transaction: "use",
		Environment: []string{"weekday-free-time"}}
	for i := 0; i < 3; i++ {
		if _, err := client.Decide(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.Check(ctx, req); err != nil {
		t.Fatal(err)
	}

	samples, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	find := func(name string, labels map[string]string) (float64, bool) {
		for _, s := range samples {
			if s.Name != name {
				continue
			}
			match := true
			for k, v := range labels {
				if s.Label(k) != v {
					match = false
					break
				}
			}
			if match {
				return s.Value, true
			}
		}
		return 0, false
	}

	if v, ok := find("grbac_http_request_duration_seconds_count", map[string]string{"route": "/v1/decide"}); !ok || v != 3 {
		t.Fatalf("decide duration count = %v, %v; want 3", v, ok)
	}
	if v, ok := find("grbac_http_requests_total", map[string]string{"route": "/v1/decide", "code": "2xx"}); !ok || v != 3 {
		t.Fatalf("decide 2xx counter = %v, %v; want 3", v, ok)
	}
	if v, ok := find("grbac_http_request_duration_seconds_count", map[string]string{"route": "/v1/check"}); !ok || v != 1 {
		t.Fatalf("check duration count = %v, %v; want 1", v, ok)
	}
	// The cache answered the repeats: hits and misses both moved.
	if v, ok := find("grbac_decision_cache_misses_total", nil); !ok || v < 1 {
		t.Fatalf("cache misses = %v, %v; want >= 1", v, ok)
	}
	if v, ok := find("grbac_decision_cache_hits_total", nil); !ok || v < 1 {
		t.Fatalf("cache hits = %v, %v; want >= 1", v, ok)
	}
	for _, name := range []string{
		"grbac_policy_generation",
		"grbac_policy_snapshot_compiles_total",
		"grbac_fail_safe_denies_total",
		"grbac_decision_cache_entries",
		"grbac_http_inflight",
		"grbac_http_shed_total",
		"grbac_http_recovered_panics_total",
		"grbac_decision_traces_total",
	} {
		if _, ok := find(name, nil); !ok {
			t.Errorf("family %s missing from /metrics", name)
		}
	}
	// Latency histograms expose cumulative buckets.
	if v, ok := find("grbac_http_request_duration_seconds_bucket", map[string]string{"route": "/v1/decide", "le": "+Inf"}); !ok || v != 3 {
		t.Fatalf("decide +Inf bucket = %v, %v; want 3", v, ok)
	}
}

func TestMetricsDisabledByDefault(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/metrics on an uninstrumented server = %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/v1/traces on an untraced server = %d, want 404", resp.StatusCode)
	}
}

func TestCorrelationIDJoinsAuditAndTrace(t *testing.T) {
	ts, client, trail, tracer := obsServer(t)

	body := []byte(`{"subject":"alice","object":"tv","transaction":"use","environment":["weekday-free-time"]}`)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/decide", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(CorrelationHeader, "corr-join-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decide = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(CorrelationHeader); got != "corr-join-1" {
		t.Fatalf("response header %s = %q, want corr-join-1", CorrelationHeader, got)
	}

	// Audit record carries the same ID.
	recs := trail.Records()
	if len(recs) != 1 {
		t.Fatalf("audit records = %d, want 1", len(recs))
	}
	if recs[0].CorrelationID != "corr-join-1" {
		t.Fatalf("audit correlation id = %q, want corr-join-1", recs[0].CorrelationID)
	}

	// The trace is retained and findable by the same ID — server side...
	tr, ok := tracer.Find("corr-join-1")
	if !ok {
		t.Fatal("no trace recorded for corr-join-1")
	}
	if tr.Route != "/v1/decide" || tr.Status != http.StatusOK {
		t.Fatalf("trace route/status = %s/%d", tr.Route, tr.Status)
	}
	if tr.Allowed == nil || !*tr.Allowed {
		t.Fatalf("trace allowed = %v, want true", tr.Allowed)
	}
	if len(tr.Steps) == 0 {
		t.Fatal("trace has no timed steps")
	}
	// ...and over the wire.
	traces, err := client.Traces(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 || traces[0].CorrelationID != "corr-join-1" {
		t.Fatalf("GET /v1/traces = %+v, want one trace for corr-join-1", traces)
	}
}

func TestCorrelationIDGeneratedWhenAbsent(t *testing.T) {
	_, client, trail, _ := obsServer(t)

	d, err := client.Decide(context.Background(), DecideRequest{
		Subject: "alice", Object: "tv", Transaction: "use",
		Environment: []string{"weekday-free-time"}})
	if err != nil {
		t.Fatal(err)
	}
	if d.CorrelationID == "" {
		t.Fatal("server did not generate a correlation id")
	}
	recs := trail.Records()
	if len(recs) != 1 || recs[0].CorrelationID != d.CorrelationID {
		t.Fatalf("audit correlation id %q does not join reply %q",
			recs[0].CorrelationID, d.CorrelationID)
	}
}

func TestBatchCorrelationCoversEveryItem(t *testing.T) {
	_, client, trail, _ := obsServer(t)
	reqs := []DecideRequest{
		{Subject: "alice", Object: "tv", Transaction: "use", Environment: []string{"weekday-free-time"}},
		{Subject: "alice", Object: "tv", Transaction: "use", Environment: []string{}},
	}
	resp, err := client.DecideBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if resp.CorrelationID == "" {
		t.Fatal("batch reply has no correlation id")
	}
	recs := trail.Records()
	if len(recs) != len(reqs) {
		t.Fatalf("audit records = %d, want %d", len(recs), len(reqs))
	}
	for i, r := range recs {
		if r.CorrelationID != resp.CorrelationID {
			t.Fatalf("record %d correlation id = %q, want %q", i, r.CorrelationID, resp.CorrelationID)
		}
	}
}

func TestTracesEndpointLimitAndOrder(t *testing.T) {
	_, client, _, _ := obsServer(t)
	ctx := context.Background()
	req := DecideRequest{Subject: "alice", Object: "tv", Transaction: "use",
		Environment: []string{"weekday-free-time"}}
	for i := 0; i < 4; i++ {
		if _, err := client.Check(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	traces, err := client.Traces(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("limit=2 returned %d traces", len(traces))
	}
	if traces[0].Seq <= traces[1].Seq {
		t.Fatalf("traces not newest-first: seqs %d, %d", traces[0].Seq, traces[1].Seq)
	}
	// A malformed request is traced too, with its error status.
	resp, err := http.Post(client.base+"/v1/decide", "application/json",
		bytes.NewReader([]byte(`{nope`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	traces, err = client.Traces(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 || traces[0].Status != http.StatusBadRequest {
		t.Fatalf("newest trace = %+v, want status 400", traces)
	}
	if traces[0].Allowed != nil {
		t.Fatal("malformed request must not carry a decision outcome")
	}
}
