package pdp

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/aware-home/grbac/internal/audit"
	"github.com/aware-home/grbac/internal/core"
	"github.com/aware-home/grbac/internal/policy"
)

const serverPolicy = `
subject role family-member;
subject role child extends family-member;
object role entertainment-devices;
env role weekday-free-time;
subject alice is child;
object tv is entertainment-devices;
transaction use;
grant child use entertainment-devices when weekday-free-time;
`

func newTestServer(t *testing.T, opts ...ServerOption) (*httptest.Server, *core.System) {
	t.Helper()
	compiled, err := policy.Compile(serverPolicy)
	if err != nil {
		t.Fatal(err)
	}
	sys := core.NewSystem()
	if err := compiled.Apply(sys, nil); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(sys, opts...))
	t.Cleanup(srv.Close)
	return srv, sys
}

func TestDecideRoundTrip(t *testing.T) {
	srv, _ := newTestServer(t)
	client := NewClient(srv.URL, srv.Client())
	ctx := context.Background()

	resp, err := client.Decide(ctx, DecideRequest{
		Subject:     "alice",
		Object:      "tv",
		Transaction: "use",
		Environment: []string{"weekday-free-time"},
	})
	if err != nil {
		t.Fatalf("Decide: %v", err)
	}
	if !resp.Allowed || resp.Effect != "permit" {
		t.Fatalf("response = %+v", resp)
	}
	if len(resp.Matches) != 1 || resp.Matches[0].SubjectRole != "child" {
		t.Fatalf("matches = %+v", resp.Matches)
	}

	// Outside the window: denied (explicit empty environment).
	resp, err = client.Decide(ctx, DecideRequest{
		Subject:     "alice",
		Object:      "tv",
		Transaction: "use",
		Environment: []string{},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Note: an explicitly empty environment serializes as absent (omitempty),
	// which the server reads as nil; with no environment source configured
	// that also evaluates to "no env roles active", so the decision matches.
	if resp.Allowed || !resp.DefaultDeny {
		t.Fatalf("response = %+v", resp)
	}
}

func TestCheck(t *testing.T) {
	srv, _ := newTestServer(t)
	client := NewClient(srv.URL, srv.Client())
	ok, err := client.Check(context.Background(), DecideRequest{
		Subject: "alice", Object: "tv", Transaction: "use",
		Environment: []string{"weekday-free-time"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Check = false")
	}
}

func TestCredentialsOverWire(t *testing.T) {
	srv, sys := newTestServer(t)
	if err := sys.SetMinConfidence(0.9); err != nil {
		t.Fatal(err)
	}
	client := NewClient(srv.URL, srv.Client())
	ctx := context.Background()

	// 75% identity fails, 98% role credential passes — §5.2 over the wire.
	ok, err := client.Check(ctx, DecideRequest{
		Subject: "alice", Object: "tv", Transaction: "use",
		Credentials: []Credential{{Subject: "alice", Confidence: 0.75, Source: "smart-floor"}},
		Environment: []string{"weekday-free-time"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("weak identity passed")
	}
	ok, err = client.Check(ctx, DecideRequest{
		Subject: "alice", Object: "tv", Transaction: "use",
		Credentials: []Credential{
			{Subject: "alice", Confidence: 0.75, Source: "smart-floor"},
			{Role: "child", Confidence: 0.98, Source: "smart-floor"},
		},
		Environment: []string{"weekday-free-time"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("role credential rejected")
	}
}

func TestStateEndpoint(t *testing.T) {
	srv, sys := newTestServer(t)
	client := NewClient(srv.URL, srv.Client())
	st, err := client.State(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// A fresh system rebuilt from the fetched state decides identically.
	restored := core.NewSystem()
	if err := restored.Import(st); err != nil {
		t.Fatal(err)
	}
	req := core.Request{Subject: "alice", Object: "tv", Transaction: "use",
		Environment: []core.RoleID{"weekday-free-time"}}
	a, err := sys.CheckAccess(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.CheckAccess(req)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("state transfer changed decisions")
	}
}

func TestHealthz(t *testing.T) {
	srv, _ := newTestServer(t)
	client := NewClient(srv.URL, srv.Client())
	if !client.Healthy(context.Background()) {
		t.Fatal("server unhealthy")
	}
	down := NewClient("http://127.0.0.1:1", nil)
	if down.Healthy(context.Background()) {
		t.Fatal("dead server healthy")
	}
}

func TestErrorMapping(t *testing.T) {
	srv, _ := newTestServer(t)
	client := NewClient(srv.URL, srv.Client())
	ctx := context.Background()

	tests := []struct {
		name       string
		req        DecideRequest
		wantStatus string
	}{
		{"unknown subject", DecideRequest{Subject: "ghost", Object: "tv", Transaction: "use"}, "404"},
		{"unknown object", DecideRequest{Subject: "alice", Object: "ghost", Transaction: "use"}, "404"},
		{"missing transaction", DecideRequest{Subject: "alice", Object: "tv"}, "400"},
		{"bad credential", DecideRequest{Subject: "alice", Object: "tv", Transaction: "use",
			Credentials: []Credential{{Confidence: 0.5}}}, "400"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := client.Decide(ctx, tt.req)
			if !errors.Is(err, ErrRemote) {
				t.Fatalf("error = %v, want ErrRemote", err)
			}
			if !strings.Contains(err.Error(), tt.wantStatus) {
				t.Fatalf("error = %v, want status %s", err, tt.wantStatus)
			}
		})
	}
}

func TestHTTPProtocolErrors(t *testing.T) {
	srv, _ := newTestServer(t)
	// Wrong method.
	resp, err := http.Get(srv.URL + "/v1/decide")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/decide status = %d", resp.StatusCode)
	}
	// Malformed body.
	resp, err = http.Post(srv.URL+"/v1/decide", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body status = %d", resp.StatusCode)
	}
	// Unknown fields rejected.
	resp, err = http.Post(srv.URL+"/v1/decide", "application/json",
		strings.NewReader(`{"subject":"alice","object":"tv","transaction":"use","bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field status = %d", resp.StatusCode)
	}
	// POST to state.
	resp, err = http.Post(srv.URL+"/v1/state", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/state status = %d", resp.StatusCode)
	}
}

func TestServerAuditing(t *testing.T) {
	logger := audit.NewLogger()
	srv, _ := newTestServer(t, WithAuditLogger(logger))
	client := NewClient(srv.URL, srv.Client())
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := client.Check(ctx, DecideRequest{
			Subject: "alice", Object: "tv", Transaction: "use",
			Environment: []string{"weekday-free-time"},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := logger.Len(); got != 3 {
		t.Fatalf("audit records = %d, want 3", got)
	}
	stats := logger.Stats()
	if stats.Permits != 3 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestStatsz(t *testing.T) {
	srv, _ := newTestServer(t)
	client := NewClient(srv.URL, srv.Client())
	ctx := context.Background()

	req := DecideRequest{
		Subject: "alice", Object: "tv", Transaction: "use",
		Environment: []string{"weekday-free-time"},
	}
	for i := 0; i < 2; i++ {
		if _, err := client.Decide(ctx, req); err != nil {
			t.Fatalf("Decide: %v", err)
		}
	}
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.DecisionMisses < 1 || st.DecisionHits < 1 {
		t.Fatalf("Stats = %+v, want at least one miss and one hit", st)
	}
	if st.DecisionCapacity == 0 {
		t.Fatalf("Stats = %+v, want caching enabled by default", st)
	}

	resp, err := srv.Client().Post(srv.URL+"/v1/statsz", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("POST /v1/statsz = %d, want 405", resp.StatusCode)
	}
}
