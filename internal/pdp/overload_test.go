package pdp

import (
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/aware-home/grbac/internal/audit"
	"github.com/aware-home/grbac/internal/core"
	"github.com/aware-home/grbac/internal/environment"
	"github.com/aware-home/grbac/internal/faults"
)

const checkBody = `{"subject":"alice","object":"tv","transaction":"use","environment":["weekday-free-time"]}`

func postCheck(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/check", "application/json", strings.NewReader(checkBody))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func fetchStatsz(t *testing.T, url string) StatszResponse {
	t.Helper()
	resp, err := http.Get(url + "/v1/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatszResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestAdmissionControlSheds saturates a 1-slot PDP with a slow (injected)
// mediation and checks that the overflow is shed with 429 + Retry-After
// while the admitted request completes, and that the shed/inflight gauges
// surface in /v1/statsz.
func TestAdmissionControlSheds(t *testing.T) {
	// One request gets a 300ms injected stall while holding the only
	// admission slot; the rest can only wait 10ms, so they must shed.
	faults.Activate(faults.NewPlan(1, faults.Rule{
		Point: faults.PDPDecide, Limit: 1,
		Action: faults.Action{Delay: 300 * time.Millisecond},
	}))
	t.Cleanup(faults.Deactivate)

	srv, _ := newTestServer(t, WithMaxInflight(1, 10*time.Millisecond))

	const n = 4
	codes := make([]int, n)
	retryAfter := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postCheck(t, srv.URL)
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
			_, _ = io.Copy(io.Discard, resp.Body)
		}(i)
	}
	wg.Wait()

	var ok, shed int
	for i, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if retryAfter[i] == "" {
				t.Errorf("429 response %d missing Retry-After", i)
			}
		default:
			t.Errorf("unexpected status %d", c)
		}
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("want both admitted and shed requests, got %d ok / %d shed", ok, shed)
	}

	st := fetchStatsz(t, srv.URL)
	if st.Server == nil {
		t.Fatal("statsz missing server section")
	}
	if st.Server.Shed != uint64(shed) {
		t.Errorf("statsz shed = %d, want %d", st.Server.Shed, shed)
	}
	if st.Server.InflightLimit != 1 {
		t.Errorf("statsz inflight_limit = %d, want 1", st.Server.InflightLimit)
	}
	if st.Server.InflightNow != 0 {
		t.Errorf("statsz inflight_now = %d after drain, want 0", st.Server.InflightNow)
	}
}

// TestPanicRecoveryMiddleware injects panics into the decide path and
// checks they are absorbed into 500s, counted in /v1/statsz, and that the
// server keeps serving afterwards.
func TestPanicRecoveryMiddleware(t *testing.T) {
	faults.Activate(faults.NewPlan(1, faults.Rule{
		Point: faults.PDPDecide, Limit: 2,
		Action: faults.Action{Panic: "poisoned request"},
	}))
	t.Cleanup(faults.Deactivate)

	srv, _ := newTestServer(t, WithErrorLog(log.New(io.Discard, "", 0)))

	for i := 0; i < 2; i++ {
		resp := postCheck(t, srv.URL)
		var e ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError || e.Error != "internal error" {
			t.Fatalf("panicking request %d: status %d, body %+v", i, resp.StatusCode, e)
		}
	}

	// The plan's limit is exhausted: the server must still be healthy.
	resp := postCheck(t, srv.URL)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic request: status %d, want 200", resp.StatusCode)
	}

	st := fetchStatsz(t, srv.URL)
	if st.Server == nil || st.Server.RecoveredPanics != 2 {
		t.Fatalf("statsz server = %+v, want 2 recovered panics", st.Server)
	}
}

// TestFailSafeDenyReachesAuditTrail wires the full degradation chain over
// HTTP: a TTL'd sensor attribute expires, the environment role fails safe
// to inactive, the PDP denies with the fail-safe reason, and the audit
// trail records that reason distinguishably.
func TestFailSafeDenyReachesAuditTrail(t *testing.T) {
	now := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	store := environment.NewStore(
		environment.WithStoreClock(clock),
		environment.WithDefaultTTL(30*time.Second),
	)
	engine := environment.NewEngine(store, environment.WithClock(clock))
	if err := engine.Define("kitchen-occupied", environment.AttrEquals{
		Key: "motion.kitchen", Value: environment.Bool(true),
	}); err != nil {
		t.Fatal(err)
	}

	sys := core.NewSystem(core.WithEnvironmentSource(engine))
	for _, err := range []error{
		sys.AddRole(core.Role{ID: "resident", Kind: core.SubjectRole}),
		sys.AddRole(core.Role{ID: "appliance", Kind: core.ObjectRole}),
		sys.AddRole(core.Role{ID: "kitchen-occupied", Kind: core.EnvironmentRole}),
		sys.AddSubject("alice"),
		sys.AssignSubjectRole("alice", "resident"),
		sys.AddObject("stove"),
		sys.AssignObjectRole("stove", "appliance"),
		sys.AddTransaction(core.SimpleTransaction("use")),
		sys.Grant(core.Permission{
			Subject: "resident", Object: "appliance",
			Environment: "kitchen-occupied", Transaction: "use", Effect: core.Permit,
		}),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	store.Set("motion.kitchen", environment.Bool(true))

	srv := httptest.NewServer(NewServer(sys, WithAuditLogger(audit.NewLogger())))
	t.Cleanup(srv.Close)

	body := `{"subject":"alice","object":"stove","transaction":"use"}`
	decide := func() DecideResponse {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/decide", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var d DecideResponse
		if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
			t.Fatal(err)
		}
		return d
	}

	if d := decide(); !d.Allowed {
		t.Fatalf("fresh sensor: %+v", d)
	}

	mu.Lock()
	now = now.Add(time.Minute) // sensor goes quiet past the TTL
	mu.Unlock()
	if d := decide(); d.Allowed || !strings.Contains(d.Reason, "fail-safe") {
		t.Fatalf("stale sensor: %+v", d)
	}

	resp, err := http.Get(srv.URL + "/v1/audit?denies=true")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var records []audit.Record
	if err := json.NewDecoder(resp.Body).Decode(&records); err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 {
		t.Fatalf("audit denies = %d records, want 1", len(records))
	}
	for _, want := range []string{"fail-safe", "motion.kitchen"} {
		if !strings.Contains(records[0].Reason, want) {
			t.Errorf("audit deny reason %q missing %q", records[0].Reason, want)
		}
	}
}
