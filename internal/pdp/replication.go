package pdp

import (
	"context"
	"net/http"
	"strconv"
	"time"

	"github.com/aware-home/grbac/internal/audit"
	"github.com/aware-home/grbac/internal/bundle"
	"github.com/aware-home/grbac/internal/core"
	"github.com/aware-home/grbac/internal/declog"
	"github.com/aware-home/grbac/internal/replica"
	"github.com/aware-home/grbac/internal/store"
)

// defaultWatchMaxWait caps one replication long-poll: a quiet primary
// answers a watch with "no change" after this long, which doubles as the
// follower's liveness signal.
const defaultWatchMaxWait = 25 * time.Second

// WithReplicaSource exposes the policy replication feed —
// GET /v1/replica/snapshot and GET /v1/replica/watch — turning this
// server into a primary that followers can sync from. The endpoints are
// read-only and carry the same information as /v1/state, so they need no
// extra trust beyond what the PDP surface already assumes.
func WithReplicaSource(src *replica.Source) ServerOption {
	return func(s *Server) { s.replicaSrc = src }
}

// WithDurableStore surfaces the durable policy store's health — WAL
// position, checkpoint generation, replay report — in a "store" section
// of /v1/statsz. It does not wire the store into the decision path (the
// store's journal hook does that at construction); this is observability
// only.
func WithDurableStore(d *store.Durable) ServerOption {
	return func(s *Server) { s.durable = d }
}

// WithWatchMaxWait bounds one replication long-poll (default 25s). Tests
// shrink it; production rarely needs to change it.
func WithWatchMaxWait(d time.Duration) ServerOption {
	return func(s *Server) {
		if d > 0 {
			s.watchMaxWait = d
		}
	}
}

// WithFollower puts the server in follower mode, serving decisions from
// f's replicated system while f keeps it converged with the primary:
//
//   - policy mutation endpoints (admin, sessions) answer 307 redirects to
//     the primary, so an admin client pointed at a follower transparently
//     administers the cluster's single writer;
//   - /v1/decide and /v1/check responses carry "stale": true once the
//     follower exceeds its staleness bound — degraded, never an outage;
//   - /v1/healthz reports 503 "degraded" while stale, letting load
//     balancers shed the node without the node refusing traffic;
//   - /v1/statsz gains a "replication" section with lag and sync counters.
func WithFollower(f *replica.Follower) ServerOption {
	return func(s *Server) { s.follower = f }
}

// StatszResponse is the /v1/statsz reply: the decision-cache counters,
// the server's admission/containment gauges, plus a replication section
// when the server is a follower, audit-trail retention accounting when
// one is attached, decision-log export counters when the server feeds an
// exporter, and the bundle trust state when a verifier is armed.
type StatszResponse struct {
	core.Stats
	Server      *ServerStats        `json:"server,omitempty"`
	Replication *replica.Stats      `json:"replication,omitempty"`
	Store       *store.DurableStats `json:"store,omitempty"`
	Audit       *audit.Summary      `json:"audit,omitempty"`
	Declog      *declog.Stats       `json:"declog,omitempty"`
	Bundle      *bundle.Status      `json:"bundle,omitempty"`
}

// HealthResponse is the /v1/healthz reply.
type HealthResponse struct {
	Status      string         `json:"status"` // "ok" | "degraded"
	Reason      string         `json:"reason,omitempty"`
	Replication *replica.Stats `json:"replication,omitempty"`
}

func (s *Server) handleReplicaSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeStatus(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.writeJSON(w, http.StatusOK, s.replicaSrc.Snapshot())
}

// handleReplicaWatch blocks until the policy generation passes ?after=
// (under ?epoch=), the long-poll cap elapses, or the client goes away,
// then reports the feed position. The write deadline is extended past the
// server-wide WriteTimeout so hardened deployments don't sever quiet
// polls; the request context still bounds the wait.
func (s *Server) handleReplicaWatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeStatus(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query()
	var after uint64
	if raw := q.Get("after"); raw != "" {
		n, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			s.writeStatus(w, http.StatusBadRequest, "bad after: want unsigned integer")
			return
		}
		after = n
	}
	// ?wait= lets the poller shorten the cap below the server's: followers
	// ask for keepalives inside their staleness bound, so an idle (but
	// reachable) primary never reads as stale.
	wait := s.watchMaxWait
	if raw := q.Get("wait"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d <= 0 {
			s.writeStatus(w, http.StatusBadRequest, "bad wait: want positive Go duration")
			return
		}
		if d < wait {
			wait = d
		}
	}
	rc := http.NewResponseController(w)
	_ = rc.SetWriteDeadline(time.Now().Add(wait + 10*time.Second))
	ctx, cancel := context.WithTimeout(r.Context(), wait)
	defer cancel()
	gen := s.replicaSrc.Wait(ctx, q.Get("epoch"), after)
	s.writeJSON(w, http.StatusOK, replica.WatchResponse{
		Epoch: s.replicaSrc.Epoch(), Generation: gen,
	})
}

// handleReplicaDelta serves the journaled mutation tail after ?after=
// (under ?epoch=). 410 Gone means the tail cannot answer — wrong epoch,
// or the position predates the retained window — and the follower should
// take a full snapshot. Mounted only when the source has a delta
// provider attached (a durable primary).
func (s *Server) handleReplicaDelta(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeStatus(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query()
	var after uint64
	if raw := q.Get("after"); raw != "" {
		n, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			s.writeStatus(w, http.StatusBadRequest, "bad after: want unsigned integer")
			return
		}
		after = n
	}
	delta, ok := s.replicaSrc.Delta(q.Get("epoch"), after)
	if !ok {
		s.writeStatus(w, http.StatusGone, "delta unavailable: take a full snapshot")
		return
	}
	s.writeJSON(w, http.StatusOK, delta)
}

// readOnlyPaths are the mutation endpoints a follower redirects to its
// primary instead of serving.
var readOnlyPaths = []string{
	"/v1/admin/roles",
	"/v1/admin/subjects",
	"/v1/admin/objects",
	"/v1/admin/transactions",
	"/v1/admin/permissions",
	"/v1/admin/sod",
	"/v1/sessions",
	"/v1/sessions/roles",
}

// registerFollower mounts the redirect handlers for mutation endpoints.
// 307 preserves method and body, so well-behaved HTTP clients (including
// this package's Client) transparently re-issue the mutation against the
// primary.
func (s *Server) registerFollower(mux *http.ServeMux) {
	primary := s.follower.PrimaryURL()
	for _, path := range readOnlyPaths {
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Location", primary+r.URL.RequestURI())
			s.writeJSON(w, http.StatusTemporaryRedirect, ErrorResponse{
				Error: "read-only follower: apply mutations to the primary at " + primary,
			})
		})
	}
}

// stale reports whether decisions served right now should carry the
// staleness marker.
func (s *Server) stale() bool {
	return s.follower != nil && s.follower.Stale()
}
