package pdp

import (
	"errors"
	"log"
	"net/http"

	"github.com/aware-home/grbac/internal/shard"
)

// Rebalance HTTP surface: the routing tier exposes the coordinator so
// operators (grbacctl rebalance ...) can grow or shrink the cluster
// online. A rebalance is minutes of streaming work, so the POST is
// asynchronous: it validates, kicks the coordinator in the background,
// and answers 202 with the starting status; progress is polled from
// the status endpoint, and the committed map reaches routers and SDK
// clients through the map watch.

// ShardRebalancePath starts a rebalance (POST {action,id,addr}).
const ShardRebalancePath = "/v1/shard/rebalance"

// ShardRebalanceStatusPath reports coordinator progress (GET).
const ShardRebalanceStatusPath = "/v1/shard/rebalance/status"

// RebalanceRequest asks the routing tier to grow ("add") or shrink
// ("remove") the cluster. Add needs the new shard's ID and address;
// remove needs only the ID.
type RebalanceRequest struct {
	Action string `json:"action"`
	ID     string `json:"id"`
	Addr   string `json:"addr,omitempty"`
}

// RebalanceHandler mounts the coordinator behind the two rebalance
// endpoints. Construct with NewRebalanceHandler and mount on an outer
// mux alongside the Router.
type RebalanceHandler struct {
	rt    *Router
	coord *shard.Coordinator
	mux   *http.ServeMux
	log   *log.Logger
}

// NewRebalanceHandler wires a coordinator to a router: the POSTed
// action rebalances relative to the router's active map, and the
// commit callback given to the coordinator (typically Router.SetMap
// plus persistence) publishes the result.
func NewRebalanceHandler(rt *Router, coord *shard.Coordinator, logger *log.Logger) *RebalanceHandler {
	if logger == nil {
		logger = log.Default()
	}
	h := &RebalanceHandler{rt: rt, coord: coord, log: logger}
	h.mux = http.NewServeMux()
	h.mux.HandleFunc(ShardRebalancePath, h.handleStart)
	h.mux.HandleFunc(ShardRebalanceStatusPath, h.handleStatus)
	return h
}

func (h *RebalanceHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

func (h *RebalanceHandler) handleStart(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST only"})
		return
	}
	var req RebalanceRequest
	if !readJSONBody(w, r, &req, http.MethodPost) {
		return
	}
	cur := h.rt.Map()
	var next *shard.Map
	var err error
	switch req.Action {
	case "add":
		if req.ID == "" || req.Addr == "" {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "add requires id and addr"})
			return
		}
		next, err = cur.Add(shard.Info{ID: req.ID, Addr: req.Addr})
	case "remove":
		if req.ID == "" {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "remove requires id"})
			return
		}
		next, err = cur.Remove(req.ID)
	default:
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "action must be add or remove"})
		return
	}
	if err != nil {
		// Shape errors (duplicate ID, unknown shard, last shard) are the
		// caller's mistake: synchronous 400, no background run.
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	// Start plans synchronously (so the 202 carries the move count) and
	// claims the single-flight slot before returning: concurrent POSTs
	// race inside the coordinator, not here, and the loser gets 409.
	st, err := h.coord.Start(r.Context(), cur, next)
	if err != nil {
		status := http.StatusBadGateway // planning could not reach a shard
		if errors.Is(err, shard.ErrRebalanceActive) {
			status = http.StatusConflict
		}
		writeJSON(w, status, ErrorResponse{Error: err.Error()})
		return
	}
	h.log.Printf("rebalance %s %s accepted: map v%d -> v%d, %d moves",
		req.Action, req.ID, st.FromVersion, st.ToVersion, st.TotalMoves)
	writeJSON(w, http.StatusAccepted, st)
}

func (h *RebalanceHandler) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "GET only"})
		return
	}
	writeJSON(w, http.StatusOK, h.coord.Status())
}
