package pdp

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestClientNon2xxMalformedErrorBody: a 500 whose body is not the JSON
// error envelope must still surface as ErrRemote with the status, not as
// a decode error.
func TestClientNon2xxMalformedErrorBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write([]byte("<html>gateway exploded</html>"))
	}))
	defer srv.Close()

	client := NewClient(srv.URL, srv.Client())
	_, err := client.Decide(context.Background(), DecideRequest{})
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v, want ErrRemote", err)
	}
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != http.StatusInternalServerError {
		t.Fatalf("err = %v, want RemoteError{500}", err)
	}
	if re.Message != "" {
		t.Fatalf("malformed body produced message %q", re.Message)
	}
	if !strings.Contains(err.Error(), "status 500") {
		t.Fatalf("error text %q lost the status", err.Error())
	}
}

// TestClientNon2xxStructuredErrorBody: the error envelope's message is
// carried through.
func TestClientNon2xxStructuredErrorBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		_, _ = w.Write([]byte(`{"error":"transaction \"nope\" not found"}`))
	}))
	defer srv.Close()

	client := NewClient(srv.URL, srv.Client())
	_, err := client.Decide(context.Background(), DecideRequest{})
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want RemoteError{400}", err)
	}
	if !strings.Contains(re.Message, "not found") {
		t.Fatalf("message %q lost the server's explanation", re.Message)
	}
}

// TestClientTruncatedResponse: a 200 whose JSON body is cut off mid-value
// is a decode error, not a silent zero-value success.
func TestClientTruncatedResponse(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"allowed":true,"effect":"per`))
	}))
	defer srv.Close()

	client := NewClient(srv.URL, srv.Client())
	_, err := client.Decide(context.Background(), DecideRequest{})
	if err == nil {
		t.Fatal("truncated body accepted")
	}
	if errors.Is(err, ErrRemote) || errors.Is(err, ErrTransport) {
		t.Fatalf("truncation misclassified: %v", err)
	}
	if !strings.Contains(err.Error(), "decode response") {
		t.Fatalf("err = %v, want decode error", err)
	}
}

// TestClientContextCancelMidRequest: cancelling while the server is
// holding the response fails promptly with the cancellation, and the
// retry layer must not swallow it into backoff sleeps.
func TestClientContextCancelMidRequest(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	defer close(release)

	// Retry enabled on purpose: cancellation must short-circuit it.
	client := NewClient(srv.URL, srv.Client(), WithRetry(5, time.Second))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := client.Decide(ctx, DecideRequest{})
	if err == nil {
		t.Fatal("cancelled request succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v — retry backoff was not short-circuited", elapsed)
	}
}

// TestClientRetryRecoversFrom5xx: with WithRetry, transient 5xx replies
// are retried until the server recovers.
func TestClientRetryRecoversFrom5xx(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"allowed":true}`))
	}))
	defer srv.Close()

	client := NewClient(srv.URL, srv.Client(), WithRetry(4, time.Millisecond))
	ok, err := client.Check(context.Background(), DecideRequest{})
	if err != nil {
		t.Fatalf("Check after retries: %v", err)
	}
	if !ok || calls.Load() != 3 {
		t.Fatalf("ok=%v calls=%d, want true after exactly 3 calls", ok, calls.Load())
	}
}

// TestClientRetryGivesUpAfterMaxAttempts: a persistently failing server
// exhausts the budget and returns the last error.
func TestClientRetryGivesUpAfterMaxAttempts(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	client := NewClient(srv.URL, srv.Client(), WithRetry(3, time.Millisecond))
	_, err := client.Decide(context.Background(), DecideRequest{})
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want RemoteError{503}", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
}

// TestClientRetryDoesNotRetry4xx: client mistakes are permanent; retrying
// them only hides bugs and burns the primary.
func TestClientRetryDoesNotRetry4xx(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		_, _ = w.Write([]byte(`{"error":"malformed request"}`))
	}))
	defer srv.Close()

	client := NewClient(srv.URL, srv.Client(), WithRetry(5, time.Millisecond))
	_, err := client.Decide(context.Background(), DecideRequest{})
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v, want ErrRemote", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1 (no retry on 4xx)", calls.Load())
	}
}

// TestClientConnectionRefusedIsTransport: a dead server yields
// ErrTransport — the class the retry policy treats as transient — and
// with retries enabled the attempts are actually spent on it.
func TestClientConnectionRefusedIsTransport(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	addr := srv.URL
	srv.Close() // now refusing connections

	client := NewClient(addr, nil)
	_, err := client.Decide(context.Background(), DecideRequest{})
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("err = %v, want ErrTransport", err)
	}
	if !transient(err) {
		t.Fatal("connection refused not classified transient")
	}
}

// TestClientSingleShotByDefault: without WithRetry the client must not
// retry, keeping test determinism and caller-controlled latency.
func TestClientSingleShotByDefault(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()

	client := NewClient(srv.URL, srv.Client())
	_, err := client.Decide(context.Background(), DecideRequest{})
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v, want ErrRemote", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1", calls.Load())
	}
}
