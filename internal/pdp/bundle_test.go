package pdp

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/aware-home/grbac/internal/bundle"
	"github.com/aware-home/grbac/internal/core"
	"github.com/aware-home/grbac/internal/policy"
	"github.com/aware-home/grbac/internal/replica"
	"github.com/aware-home/grbac/internal/shard"
)

// bundlePolicy grants a subject the serverPolicy never mentions, so a
// successful activation is observable as a decision flip.
const bundlePolicy = `
subject role guest;
object role entertainment-devices;
subject visitor is guest;
object tv is entertainment-devices;
transaction use;
grant guest use entertainment-devices;
`

// testBundleKit holds one trust domain for a test: a keypair plus a
// signer for fresh revisions.
type testBundleKit struct {
	pub  []byte
	sign func(t *testing.T, rev uint64, src string) []byte
}

func newBundleKit(t *testing.T) (*testBundleKit, func() *bundle.Verifier) {
	t.Helper()
	pub, priv, err := bundle.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	kit := &testBundleKit{
		pub: pub,
		sign: func(t *testing.T, rev uint64, src string) []byte {
			t.Helper()
			compiled, err := policy.Compile(src)
			if err != nil {
				t.Fatal(err)
			}
			sys := core.NewSystem()
			if err := compiled.Apply(sys, nil); err != nil {
				t.Fatal(err)
			}
			st, _ := sys.Snapshot()
			b := bundle.Build(st, rev, time.Now())
			if err := b.Sign(priv, bundle.KeyID(pub)); err != nil {
				t.Fatal(err)
			}
			raw, err := b.Encode()
			if err != nil {
				t.Fatal(err)
			}
			return raw
		},
	}
	return kit, func() *bundle.Verifier { return bundle.NewVerifier(pub) }
}

func remoteStatus(t *testing.T, err error) int {
	t.Helper()
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	return re.Status
}

func TestBundleActivateOnPrimary(t *testing.T) {
	kit, mkVerifier := newBundleKit(t)
	srv, sys := newTestServer(t, WithBundleVerifier(mkVerifier()))
	client := NewClient(srv.URL, srv.Client())
	ctx := context.Background()

	visit := core.Request{Subject: "visitor", Object: "tv", Transaction: "use"}
	if _, err := sys.Decide(visit); err == nil {
		t.Fatal("visitor already known before activation")
	}

	resp, err := client.PushBundle(ctx, kit.sign(t, 1, bundlePolicy))
	if err != nil {
		t.Fatalf("PushBundle: %v", err)
	}
	if resp.Status != "activated" || resp.Revision != 1 {
		t.Fatalf("response = %+v", resp)
	}
	d, err := sys.Decide(visit)
	if err != nil || !d.Allowed {
		t.Fatalf("post-activation decision = %+v, %v", d, err)
	}
	st, err := client.BundleStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Revision != 1 || st.Admitted != 1 {
		t.Fatalf("status = %+v", st)
	}
}

func TestBundleRejectionsOnPrimary(t *testing.T) {
	kit, mkVerifier := newBundleKit(t)
	srv, sys := newTestServer(t, WithBundleVerifier(mkVerifier()))
	client := NewClient(srv.URL, srv.Client())
	ctx := context.Background()
	genBefore := sys.Generation()

	t.Run("unsigned", func(t *testing.T) {
		st, _ := sys.Snapshot()
		b := bundle.Build(st, 5, time.Now())
		raw, err := b.Encode()
		if err != nil {
			t.Fatal(err)
		}
		_, err = client.PushBundle(ctx, raw)
		if got := remoteStatus(t, err); got != 403 {
			t.Fatalf("unsigned push status = %d, want 403", got)
		}
	})
	t.Run("tampered", func(t *testing.T) {
		raw := kit.sign(t, 5, bundlePolicy)
		tampered := bytes.Replace(raw, []byte(`"visitor"`), []byte(`"intruder"`), 1)
		if bytes.Equal(tampered, raw) {
			t.Fatal("tamper was a no-op")
		}
		_, err := client.PushBundle(ctx, tampered)
		if got := remoteStatus(t, err); got != 403 {
			t.Fatalf("tampered push status = %d, want 403", got)
		}
	})
	// Nothing activated: the policy generation never moved.
	if sys.Generation() != genBefore {
		t.Fatal("rejected bundles mutated the policy")
	}

	t.Run("stale", func(t *testing.T) {
		if _, err := client.PushBundle(ctx, kit.sign(t, 3, bundlePolicy)); err != nil {
			t.Fatal(err)
		}
		_, err := client.PushBundle(ctx, kit.sign(t, 3, bundlePolicy))
		if got := remoteStatus(t, err); got != 409 {
			t.Fatalf("stale push status = %d, want 409", got)
		}
		_, err = client.PushBundle(ctx, kit.sign(t, 2, bundlePolicy))
		if got := remoteStatus(t, err); got != 409 {
			t.Fatalf("rollback push status = %d, want 409", got)
		}
	})
}

func TestBundleOnFollower(t *testing.T) {
	kit, mkVerifier := newBundleKit(t)
	primarySrv, _ := newTestServerWithSource(t)
	followerSys := core.NewSystem()
	f := replica.NewFollower(followerSys, primarySrv.URL,
		replica.WithBackoff(time.Millisecond, 10*time.Millisecond))
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go func() { _ = f.Run(ctx) }()
	fsrv := newHTTPServer(t, NewServer(followerSys, WithFollower(f), WithBundleVerifier(mkVerifier())))
	client := NewClient(fsrv.URL, fsrv.Client())

	// Unsigned and tampered bundles are rejected at the follower's own
	// verification gate — not redirected to the primary, not activated.
	raw := kit.sign(t, 1, bundlePolicy)
	tampered := bytes.Replace(raw, []byte(`"visitor"`), []byte(`"intruder"`), 1)
	_, err := client.PushBundle(ctx, tampered)
	if got := remoteStatus(t, err); got != 403 {
		t.Fatalf("tampered push on follower status = %d, want 403", got)
	}
	// A properly signed bundle is verified and activated locally.
	resp, err := client.PushBundle(ctx, raw)
	if err != nil {
		t.Fatalf("PushBundle on follower: %v", err)
	}
	if resp.Revision != 1 {
		t.Fatalf("response = %+v", resp)
	}
	d, err := followerSys.Decide(core.Request{Subject: "visitor", Object: "tv", Transaction: "use"})
	if err != nil || !d.Allowed {
		t.Fatalf("follower post-activation decision = %+v, %v", d, err)
	}
}

func TestBundleOnRouter(t *testing.T) {
	kit, mkVerifier := newBundleKit(t)
	// Each shard gets its own verifier (same trust root) so the router's
	// broadcast re-verifies at every activation point.
	compiled, err := policy.Compile(sharedPolicy)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2
	shardSys := make([]*core.System, n)
	infos := make([]shard.Info, n)
	for i := 0; i < n; i++ {
		sys := core.NewSystem()
		if err := compiled.Apply(sys, nil); err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(NewServer(sys, WithBundleVerifier(mkVerifier())))
		t.Cleanup(srv.Close)
		shardSys[i] = sys
		infos[i] = shard.Info{ID: fmt.Sprintf("s%d", i), Addr: srv.URL}
	}
	m, err := shard.New(0, infos...)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRouter(m, WithRouterBundleVerifier(mkVerifier()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)
	client := NewClient(front.URL, nil)
	ctx := context.Background()

	tampered := bytes.Replace(kit.sign(t, 1, bundlePolicy), []byte(`"visitor"`), []byte(`"intruder"`), 1)
	_, err = client.PushBundle(ctx, tampered)
	if got := remoteStatus(t, err); got != 403 {
		t.Fatalf("tampered push on router status = %d, want 403", got)
	}
	// The router rejected it locally: no shard saw an activation.
	for i, sys := range shardSys {
		if _, err := sys.Decide(core.Request{Subject: "visitor", Object: "tv", Transaction: "use"}); err == nil {
			t.Fatalf("shard %d activated a tampered bundle", i)
		}
	}

	resp, err := client.PushBundle(ctx, kit.sign(t, 1, bundlePolicy))
	if err != nil {
		t.Fatalf("PushBundle via router: %v", err)
	}
	if resp.Revision != 1 {
		t.Fatalf("response = %+v", resp)
	}
	for i, sys := range shardSys {
		d, err := sys.Decide(core.Request{Subject: "visitor", Object: "tv", Transaction: "use"})
		if err != nil || !d.Allowed {
			t.Fatalf("shard %d post-activation decision = %+v, %v", i, d, err)
		}
	}
	st, err := client.BundleStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Revision != 1 {
		t.Fatalf("router bundle status = %+v", st)
	}
}
