package pdp

import (
	"context"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/aware-home/grbac/internal/audit"
	"github.com/aware-home/grbac/internal/replica"
)

func TestDecideBatchRoundTrip(t *testing.T) {
	srv, _ := newTestServer(t)
	client := NewClient(srv.URL, srv.Client())
	ctx := context.Background()

	permit := DecideRequest{
		Subject: "alice", Object: "tv", Transaction: "use",
		Environment: []string{"weekday-free-time"},
	}
	deny := DecideRequest{Subject: "alice", Object: "tv", Transaction: "use"}
	broken := DecideRequest{Subject: "ghost", Object: "tv", Transaction: "use"}

	resp, err := client.DecideBatch(ctx, []DecideRequest{permit, deny, broken})
	if err != nil {
		t.Fatalf("DecideBatch: %v", err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(resp.Results))
	}
	if d := resp.Results[0].Decision; d == nil || !d.Allowed || resp.Results[0].Error != "" {
		t.Fatalf("permit item = %+v", resp.Results[0])
	}
	if d := resp.Results[1].Decision; d == nil || d.Allowed || !d.DefaultDeny {
		t.Fatalf("deny item = %+v", resp.Results[1])
	}
	if it := resp.Results[2]; it.Decision != nil || !strings.Contains(it.Error, "ghost") {
		t.Fatalf("error item = %+v", resp.Results[2])
	}

	// A batch item and the single-shot endpoint agree on the same request.
	single, err := client.Decide(ctx, permit)
	if err != nil {
		t.Fatal(err)
	}
	got := *resp.Results[0].Decision
	if got.Allowed != single.Allowed || got.Effect != single.Effect ||
		got.Reason != single.Reason || len(got.Matches) != len(single.Matches) {
		t.Fatalf("batch item %+v != single decision %+v", got, single)
	}
}

func TestDecideBatchProtocolErrors(t *testing.T) {
	srv, _ := newTestServer(t)

	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/decide/batch", "application/json",
			strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		return resp.StatusCode
	}

	if code := post(`{"requests":[]}`); code != http.StatusBadRequest {
		t.Fatalf("empty batch status = %d, want 400", code)
	}
	if code := post(`{}`); code != http.StatusBadRequest {
		t.Fatalf("absent requests status = %d, want 400", code)
	}

	var b strings.Builder
	b.WriteString(`{"requests":[`)
	for i := 0; i <= maxBatchSize; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`{"subject":"alice","object":"tv","transaction":"use"}`)
	}
	b.WriteString(`]}`)
	if code := post(b.String()); code != http.StatusBadRequest {
		t.Fatalf("oversized batch status = %d, want 400", code)
	}

	resp, err := http.Get(srv.URL + "/v1/decide/batch")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/decide/batch status = %d, want 405", resp.StatusCode)
	}
}

func TestDecideBatchAudited(t *testing.T) {
	logger := audit.NewLogger()
	srv, _ := newTestServer(t, WithAuditLogger(logger))
	client := NewClient(srv.URL, srv.Client())

	resp, err := client.DecideBatch(context.Background(), []DecideRequest{
		{Subject: "alice", Object: "tv", Transaction: "use",
			Environment: []string{"weekday-free-time"}},
		{Subject: "alice", Object: "tv", Transaction: "use"},
		{Subject: "ghost", Object: "tv", Transaction: "use"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(resp.Results))
	}
	// Both mediated items (one permit, one deny) are on the trail; the
	// erroring item never reached mediation and is not.
	if got := logger.Len(); got != 2 {
		t.Fatalf("audit records = %d, want 2", got)
	}
	stats := logger.Stats()
	if stats.Permits != 1 || stats.Denies != 1 {
		t.Fatalf("audit stats = %+v", stats)
	}
}

func TestFollowerBatchMarksStale(t *testing.T) {
	var offset atomic.Int64
	clock := func() time.Time { return time.Now().Add(time.Duration(offset.Load())) }
	_, f, followerURL, hc := newFollowerServer(t,
		replica.WithMaxStaleness(50*time.Millisecond),
		replica.WithFollowerClock(clock))
	client := NewClient(followerURL, hc)
	ctx := context.Background()

	req := []DecideRequest{{
		Subject: "alice", Object: "tv", Transaction: "use",
		Environment: []string{"weekday-free-time"},
	}}
	resp, err := client.DecideBatch(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stale {
		t.Fatal("healthy follower marked its batch stale")
	}

	offset.Store(int64(time.Hour))
	if !f.Stale() {
		t.Fatal("follower not stale after clock jump")
	}
	resp, err = client.DecideBatch(ctx, req)
	if err != nil {
		t.Fatalf("stale follower refused to serve: %v", err)
	}
	if !resp.Stale {
		t.Fatal("stale follower did not mark its batch")
	}
	if d := resp.Results[0].Decision; d == nil || !d.Allowed {
		t.Fatalf("stale follower changed the decision: %+v", resp.Results[0])
	}
}
