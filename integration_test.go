package grbac_test

// Full-system integration: the simulated Aware Home's policy engine served
// over the network, administered remotely, persisted to disk, and restored
// — the complete prototype lifecycle the paper's §7 promises.

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	grbac "github.com/aware-home/grbac"
	"github.com/aware-home/grbac/internal/audit"
	"github.com/aware-home/grbac/internal/pdp"
	"github.com/aware-home/grbac/internal/store"
)

func TestFullSystemLifecycle(t *testing.T) {
	monday8pm := time.Date(2000, 1, 17, 20, 0, 0, 0, time.UTC)
	hh, err := grbac.NewHousehold(monday8pm)
	if err != nil {
		t.Fatal(err)
	}

	// 1. Serve the household's live system over HTTP with audit and admin.
	trail := audit.NewLogger()
	server := httptest.NewServer(pdp.NewServer(hh.System,
		pdp.WithAuditLogger(trail), pdp.WithAdmin()))
	defer server.Close()
	client := pdp.NewClient(server.URL, server.Client())
	ctx := context.Background()

	// 2. A remote application mediates; the environment legs come from the
	// live engine (the server's system has the engine as its source, so a
	// request with no environment uses real simulated time).
	ok, err := client.Check(ctx, pdp.DecideRequest{
		Subject: "alice", Object: "tv", Transaction: "use",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("remote mediation denied the §5.1 scenario at Monday 8pm")
	}
	// Advance the simulated clock past the window: the same remote
	// request now denies.
	hh.Clock.Set(time.Date(2000, 1, 17, 23, 0, 0, 0, time.UTC))
	ok, err = client.Check(ctx, pdp.DecideRequest{
		Subject: "alice", Object: "tv", Transaction: "use",
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("remote mediation granted outside the window")
	}

	// 3. The homeowner administers remotely: a new babysitter role with
	// camera access.
	for _, step := range []error{
		client.CreateRole(ctx, pdp.RoleRequest{ID: "babysitter", Kind: "subject",
			Parents: []string{"authorized-guest"}}),
		client.UpsertSubject(ctx, pdp.BindingRequest{ID: "jane", Roles: []string{"babysitter"}}),
		client.GrantPermission(ctx, pdp.PermissionRequest{
			Subject: "babysitter", Object: "cameras", Environment: "*environment*",
			Transaction: "view-still", Effect: "permit", MinConfidence: 0.6,
		}),
	} {
		if step != nil {
			t.Fatal(step)
		}
	}
	ok, err = client.Check(ctx, pdp.DecideRequest{
		Subject: "jane", Object: "nursery-camera", Transaction: "view-still",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("remotely administered babysitter role not effective")
	}

	// 4. Review: who can see the nursery camera stills now?
	who, err := client.WhoCan(ctx, "view-still", "nursery-camera", nil)
	if err != nil {
		t.Fatal(err)
	}
	foundJane, foundMom := false, false
	for _, sub := range who {
		if sub == "jane" {
			foundJane = true
		}
		if sub == "mom" {
			foundMom = true
		}
	}
	if !foundJane || !foundMom {
		t.Fatalf("WhoCan(view-still, nursery-camera) = %v", who)
	}

	// 5. The audit trail recorded the remote decisions.
	records, err := client.Audit(ctx, pdp.AuditQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if len(records) < 3 {
		t.Fatalf("audit records = %d", len(records))
	}

	// 6. Persist the (administered) policy and restore it elsewhere; the
	// restored system decides identically.
	path := filepath.Join(t.TempDir(), "home.json")
	if err := store.Save(path, hh.System, hh.Clock.Now()); err != nil {
		t.Fatal(err)
	}
	restored, _, err := store.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	ok, err = restored.CheckAccess(grbac.Request{
		Subject: "jane", Object: "nursery-camera", Transaction: "view-still",
		Environment: []grbac.RoleID{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("restored system lost the babysitter grant")
	}

	// 7. The trusted event log survived it all.
	if err := hh.Log.Verify(); err != nil {
		t.Fatalf("trusted log broken: %v", err)
	}
}
