#!/bin/sh
# Benchmark-regression smoke for CI: run the mediation benches (E11, E16,
# E17) with -benchmem and fail if the decision cache or the lock-free
# mediation path has regressed.
#
# Guards (allocation counts are stable across CI hardware, unlike ns/op):
#   1. the warm cached path must allocate strictly less than the uncached
#      path on the same workload;
#   2. the warm cached path must stay under an absolute allocation budget,
#      so a key- or clone-heavy change cannot hide behind guard 1;
#   3. a replicated follower must not allocate more than its primary;
#   4. at 8 goroutines, lock-free Decide must beat the serialized path by
#      BENCHGUARD_PAR_SPEEDUP x (adaptive default: 3 on 8+ cores, 0.7 below);
#   5. warm CheckAccess must allocate nothing;
#   6. the lock-free Decide path must show no sync.RWMutex contention
#      under the mutex profiler;
#   7. a disabled fault-injection hook (faults.Inject with no active plan)
#      must allocate nothing and cost at most BENCHGUARD_MAX_FAULT_NS
#      (default 100ns) — the hooks are compiled into the hot paths that
#      guards 1-6 measure, so they must stay free when idle;
#   8. the disabled observability hooks (nil obs.Counter/Histogram/Tracer)
#      must allocate nothing and cost at most BENCHGUARD_MAX_OBS_NS
#      (default 100ns) combined, the same idle-freedom discipline for the
#      metrics layer;
#   9. the warm Decide path behind the durable store (WAL journal attached)
#      must allocate exactly as much as the plain in-memory system and stay
#      within BENCHGUARD_WAL_RATIO x (default 3) of its latency — the
#      journal engages on mutation only, never on reads.
#  10. the embedded SDK's warm CheckAccess must allocate nothing — it is
#      the server's own zero-alloc cache hit running in the caller's
#      address space — and beat the HTTP round trip to the primary by
#      BENCHGUARD_SDK_SPEEDUP x (default 10);
#  11. sharded scaling (E22): aggregate decide throughput at 4 shards must
#      be at least BENCHGUARD_SHARD_SPEEDUP x the 1-shard baseline
#      (default 3). The scaling is algorithmic — partitioning shrinks the
#      per-shard snapshot recompile that session churn forces — so the
#      guard holds on single-core CI runners too.
#  12. the disabled hedging hook on the router's scatter fan-out path
#      (hedgedFetch with no hedger configured) must allocate nothing and
#      cost at most BENCHGUARD_MAX_HEDGE_NS (default 100ns) — routers
#      that never opt into hedging must not pay for it per shard call.
#  13. the disabled decision-log hook (a nil *declog.Exporter's Offer,
#      threaded into the audit hot path) must allocate nothing and cost
#      at most BENCHGUARD_MAX_DECLOG_NS (default 100ns) — PDPs that never
#      turn on export must not pay for the pipeline per decision.
set -eu

cd "$(dirname "$0")/.."

budget=${BENCHGUARD_MAX_WARM_ALLOCS:-64}
out=$(go test -run '^$' \
	-bench 'E1RBACMediation|E3EntertainmentPolicy|E11CachedMediation' \
	-benchtime 100x -benchmem .)
echo "$out"

allocs_of() {
	echo "$out" | awk -v pat="$1" '$1 ~ pat { print $(NF-1); exit }'
}

warm=$(allocs_of 'E11CachedMediation/warm')
uncached=$(allocs_of 'E11CachedMediation/uncached')
if [ -z "$warm" ] || [ -z "$uncached" ]; then
	echo "benchguard: missing E11CachedMediation results" >&2
	exit 1
fi

echo "benchguard: warm=$warm allocs/op, uncached=$uncached allocs/op, budget=$budget"
if [ "$warm" -ge "$uncached" ]; then
	echo "benchguard: FAIL: warm cached path allocates as much as uncached ($warm >= $uncached)" >&2
	exit 1
fi
if [ "$warm" -gt "$budget" ]; then
	echo "benchguard: FAIL: warm cached path exceeds allocation budget ($warm > $budget)" >&2
	exit 1
fi

# Guard 3: a follower PDP's warm Decide path must not allocate more than
# the primary's on the same request — replication must hand back a System
# structurally identical to the original (E16).
rout=$(go test -run '^$' -bench 'E16ReplicatedMediation' \
	-benchtime 100x -benchmem ./internal/replica)
echo "$rout"

ralloc_of() {
	echo "$rout" | awk -v pat="$1" '$1 ~ pat { print $(NF-1); exit }'
}

primary=$(ralloc_of 'E16ReplicatedMediation/primary')
follower=$(ralloc_of 'E16ReplicatedMediation/follower')
if [ -z "$primary" ] || [ -z "$follower" ]; then
	echo "benchguard: missing E16ReplicatedMediation results" >&2
	exit 1
fi

echo "benchguard: primary=$primary allocs/op, follower=$follower allocs/op"
if [ "$follower" -gt "$primary" ]; then
	echo "benchguard: FAIL: replicated follower allocates more than its primary ($follower > $primary)" >&2
	exit 1
fi

# Guard 4: lock-free parallel mediation (E17). At 8 goroutines the
# snapshot path must beat the serialized mutex path by
# BENCHGUARD_PAR_SPEEDUP x in throughput. The default is adaptive: on
# hosts with 8+ cores lock contention is real and we demand 3x; on
# smaller CI machines the goroutines share a core and contention cannot
# materialize, so the guard degrades to "not slower than 0.7x".
cores=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
if [ "$cores" -ge 8 ]; then
	speedup=${BENCHGUARD_PAR_SPEEDUP:-3}
else
	speedup=${BENCHGUARD_PAR_SPEEDUP:-0.7}
fi

pout=$(go test -run '^$' -bench 'E17' -benchtime 50000x -cpu 8 -benchmem .)
echo "$pout"

pfield_of() {
	echo "$pout" | awk -v pat="$1" -v f="$2" '$1 ~ pat { print $f; exit }'
}

lockfree_ns=$(pfield_of 'E17ParallelDecide/lockfree' 3)
serial_ns=$(pfield_of 'E17ParallelDecide/serialized' 3)
warm_check=$(pfield_of 'E17CheckAccessWarm' 7)
if [ -z "$lockfree_ns" ] || [ -z "$serial_ns" ] || [ -z "$warm_check" ]; then
	echo "benchguard: missing E17 results" >&2
	exit 1
fi

echo "benchguard: cores=$cores lockfree=${lockfree_ns}ns/op serialized=${serial_ns}ns/op required=x$speedup"
if ! awk -v lf="$lockfree_ns" -v ser="$serial_ns" -v need="$speedup" \
	'BEGIN { exit !(ser / lf >= need) }'; then
	echo "benchguard: FAIL: parallel lock-free throughput only x$(awk -v lf="$lockfree_ns" -v ser="$serial_ns" 'BEGIN { printf "%.2f", ser / lf }') of serialized (need x$speedup)" >&2
	exit 1
fi

# Guard 5: the warm CheckAccess fast path answers from the cache without
# cloning the decision — zero allocations, exactly.
echo "benchguard: warm CheckAccess=$warm_check allocs/op"
if [ "$warm_check" -ne 0 ]; then
	echo "benchguard: FAIL: warm CheckAccess allocates ($warm_check allocs/op, want 0)" >&2
	exit 1
fi

# Guard 6: the lock-free Decide path must take no read-write lock. Run
# the lockfree bench alone under the mutex profiler and assert no
# sync.(*RWMutex) contention appears; the sharded cache's plain Mutexes
# are expected and allowed.
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
go test -run '^$' -bench 'E17ParallelDecide/lockfree' -benchtime 5000x -cpu 8 \
	-mutexprofile "$tmpdir/mutex.out" -o "$tmpdir/bench.bin" . >/dev/null
mtop=$(go tool pprof -top "$tmpdir/bench.bin" "$tmpdir/mutex.out" 2>&1)
if echo "$mtop" | grep -F 'sync.(*RWMutex)'; then
	echo "benchguard: FAIL: lock-free Decide contended a RWMutex (see pprof -top above)" >&2
	exit 1
fi
echo "benchguard: mutex profile clean (no RWMutex contention on the lock-free path)"

# Guard 7: the disabled fault-injection hook. Every guard above already
# runs with the hooks compiled in (Decide's handlers, the event bus, the
# replication transport all call faults.Inject), so a regression there
# would trip guards 1-6 too; this measures the hook itself so a slow
# Inject cannot hide inside benchmark noise.
fault_ns_budget=${BENCHGUARD_MAX_FAULT_NS:-100}
fout=$(go test -run '^$' -bench 'DisabledInject' -benchtime 1000000x -benchmem \
	./internal/faults)
echo "$fout"

ffield_of() {
	echo "$fout" | awk -v pat="$1" -v f="$2" '$1 ~ pat { print $f; exit }'
}

# GOMAXPROCS >1 suffixes the name with "-N"; a 1-core runner does not.
fault_ns=$(ffield_of '^BenchmarkDisabledInject(-[0-9]+)?$' 3)
fault_allocs=$(ffield_of '^BenchmarkDisabledInject(-[0-9]+)?$' 7)
if [ -z "$fault_ns" ] || [ -z "$fault_allocs" ]; then
	echo "benchguard: missing DisabledInject results" >&2
	exit 1
fi

echo "benchguard: disabled fault hook=${fault_ns}ns/op, $fault_allocs allocs/op, budget=${fault_ns_budget}ns"
if [ "$fault_allocs" -ne 0 ]; then
	echo "benchguard: FAIL: disabled fault hook allocates ($fault_allocs allocs/op, want 0)" >&2
	exit 1
fi
if ! awk -v ns="$fault_ns" -v max="$fault_ns_budget" 'BEGIN { exit !(ns <= max) }'; then
	echo "benchguard: FAIL: disabled fault hook costs ${fault_ns}ns/op (budget ${fault_ns_budget}ns)" >&2
	exit 1
fi

# Guard 8: the disabled observability hooks. One op is a nil-counter Inc,
# a nil-histogram ObserveSince, and a nil-tracer Record back to back — the
# three hooks an instrumented-but-disabled hot path pays per decision.
obs_ns_budget=${BENCHGUARD_MAX_OBS_NS:-100}
oout=$(go test -run '^$' -bench 'DisabledObsHook' -benchtime 1000000x -benchmem \
	./internal/obs)
echo "$oout"

ofield_of() {
	echo "$oout" | awk -v pat="$1" -v f="$2" '$1 ~ pat { print $f; exit }'
}

obs_ns=$(ofield_of '^BenchmarkDisabledObsHook(-[0-9]+)?$' 3)
obs_allocs=$(ofield_of '^BenchmarkDisabledObsHook(-[0-9]+)?$' 7)
if [ -z "$obs_ns" ] || [ -z "$obs_allocs" ]; then
	echo "benchguard: missing DisabledObsHook results" >&2
	exit 1
fi

echo "benchguard: disabled obs hooks=${obs_ns}ns/op, $obs_allocs allocs/op, budget=${obs_ns_budget}ns"
if [ "$obs_allocs" -ne 0 ]; then
	echo "benchguard: FAIL: disabled obs hooks allocate ($obs_allocs allocs/op, want 0)" >&2
	exit 1
fi
if ! awk -v ns="$obs_ns" -v max="$obs_ns_budget" 'BEGIN { exit !(ns <= max) }'; then
	echo "benchguard: FAIL: disabled obs hooks cost ${obs_ns}ns/op (budget ${obs_ns_budget}ns)" >&2
	exit 1
fi

# Guard 9: the durable store must be free on the read path. The WAL
# journal hooks into mutations; a decision on a recovered system is the
# same cached lookup as on a plain in-memory one. Allocations must match
# exactly; latency gets a generous ratio because both numbers sit in the
# low hundreds of ns where scheduler noise is proportionally large.
wal_ratio=${BENCHGUARD_WAL_RATIO:-3}
sout=$(go test -run '^$' -bench 'WarmDecide' -benchtime 20000x -benchmem \
	./internal/store)
echo "$sout"

sfield_of() {
	echo "$sout" | awk -v pat="$1" -v f="$2" '$1 ~ pat { print $f; exit }'
}

mem_ns=$(sfield_of 'WarmDecide/memory' 3)
mem_allocs=$(sfield_of 'WarmDecide/memory' 7)
dur_ns=$(sfield_of 'WarmDecide/durable' 3)
dur_allocs=$(sfield_of 'WarmDecide/durable' 7)
if [ -z "$mem_ns" ] || [ -z "$mem_allocs" ] || [ -z "$dur_ns" ] || [ -z "$dur_allocs" ]; then
	echo "benchguard: missing WarmDecide results" >&2
	exit 1
fi

echo "benchguard: warm Decide memory=${mem_ns}ns/op ($mem_allocs allocs/op), durable=${dur_ns}ns/op ($dur_allocs allocs/op), ratio budget=x$wal_ratio"
if [ "$dur_allocs" -ne "$mem_allocs" ]; then
	echo "benchguard: FAIL: durable warm Decide allocates differently ($dur_allocs vs $mem_allocs allocs/op)" >&2
	exit 1
fi
if ! awk -v d="$dur_ns" -v m="$mem_ns" -v need="$wal_ratio" \
	'BEGIN { exit !(d <= m * need) }'; then
	echo "benchguard: FAIL: durable warm Decide ${dur_ns}ns/op exceeds x$wal_ratio of in-memory ${mem_ns}ns/op" >&2
	exit 1
fi

# Guard 10: the embedded SDK (E21). Warm CheckAccess through the SDK is
# the same zero-alloc cache hit guard 5 pins, just replicated into the
# caller's process — so it must stay at exactly 0 allocs/op, and the
# whole point of embedding is dodging the HTTP round trip, so it must
# beat the remote path by BENCHGUARD_SDK_SPEEDUP x (default 10; the
# measured gap on loopback is >100x, so 10 leaves CI headroom).
sdk_speedup=${BENCHGUARD_SDK_SPEEDUP:-10}
kout=$(go test -run '^$' -bench 'E21EmbeddedMediation' -benchtime 5000x \
	-benchmem ./sdk)
echo "$kout"

kfield_of() {
	echo "$kout" | awk -v pat="$1" -v f="$2" '$1 ~ pat { print $f; exit }'
}

emb_ns=$(kfield_of 'E21EmbeddedMediation/embedded' 3)
emb_allocs=$(kfield_of 'E21EmbeddedMediation/embedded' 7)
rem_ns=$(kfield_of 'E21EmbeddedMediation/remote' 3)
if [ -z "$emb_ns" ] || [ -z "$emb_allocs" ] || [ -z "$rem_ns" ]; then
	echo "benchguard: missing E21EmbeddedMediation results" >&2
	exit 1
fi

echo "benchguard: embedded=${emb_ns}ns/op ($emb_allocs allocs/op), remote=${rem_ns}ns/op, required=x$sdk_speedup"
if [ "$emb_allocs" -ne 0 ]; then
	echo "benchguard: FAIL: embedded warm CheckAccess allocates ($emb_allocs allocs/op, want 0)" >&2
	exit 1
fi
if ! awk -v e="$emb_ns" -v r="$rem_ns" -v need="$sdk_speedup" \
	'BEGIN { exit !(r / e >= need) }'; then
	echo "benchguard: FAIL: embedded mediation only x$(awk -v e="$emb_ns" -v r="$rem_ns" 'BEGIN { printf "%.2f", r / e }') of remote (need x$sdk_speedup)" >&2
	exit 1
fi

# Guard 11: sharded scaling (E22). Run the shard sweep and hold the
# 4-shard aggregate decide throughput to BENCHGUARD_SHARD_SPEEDUP x the
# 1-shard baseline. E22 writes BENCH_SHARD.json into the working
# directory; run it from a temp dir so the guard never dirties the
# committed proof, then read the speedup back out of the JSON.
shard_speedup=${BENCHGUARD_SHARD_SPEEDUP:-3}
e22dir=$(mktemp -d)
go build -o "$e22dir/grbac-bench" ./cmd/grbac-bench
e22out=$(cd "$e22dir" && ./grbac-bench -run E22) || {
	rm -rf "$e22dir"
	echo "benchguard: FAIL: grbac-bench -run E22 errored" >&2
	exit 1
}
echo "$e22out"
at4=$(awk -F'[:,]' '/"speedup_at_4_shards"/ { gsub(/[ \t]/, "", $2); print $2 }' \
	"$e22dir/BENCH_SHARD.json")
rm -rf "$e22dir"
if [ -z "$at4" ]; then
	echo "benchguard: missing speedup_at_4_shards in BENCH_SHARD.json" >&2
	exit 1
fi

echo "benchguard: 4-shard aggregate decide speedup=x$at4, required=x$shard_speedup"
if ! awk -v got="$at4" -v need="$shard_speedup" 'BEGIN { exit !(got >= need) }'; then
	echo "benchguard: FAIL: 4-shard speedup only x$at4 (need x$shard_speedup)" >&2
	exit 1
fi

# Guard 12: the disabled hedging hook. Every scatter call on the router
# runs through hedgedFetch; with hedging off (the default) that wrapper
# must collapse to a nil check — zero allocations, single-digit ns — so
# the resilience knobs stay free for routers that never turn them on.
hedge_ns_budget=${BENCHGUARD_MAX_HEDGE_NS:-100}
hout=$(go test -run '^$' -bench 'DisabledHedgeHook' -benchtime 1000000x -benchmem \
	./internal/pdp)
echo "$hout"

hfield_of() {
	echo "$hout" | awk -v pat="$1" -v f="$2" '$1 ~ pat { print $f; exit }'
}

hedge_ns=$(hfield_of '^BenchmarkDisabledHedgeHook(-[0-9]+)?$' 3)
hedge_allocs=$(hfield_of '^BenchmarkDisabledHedgeHook(-[0-9]+)?$' 7)
if [ -z "$hedge_ns" ] || [ -z "$hedge_allocs" ]; then
	echo "benchguard: missing DisabledHedgeHook results" >&2
	exit 1
fi

echo "benchguard: disabled hedge hook=${hedge_ns}ns/op, $hedge_allocs allocs/op, budget=${hedge_ns_budget}ns"
if [ "$hedge_allocs" -ne 0 ]; then
	echo "benchguard: FAIL: disabled hedge hook allocates ($hedge_allocs allocs/op, want 0)" >&2
	exit 1
fi
if ! awk -v ns="$hedge_ns" -v max="$hedge_ns_budget" 'BEGIN { exit !(ns <= max) }'; then
	echo "benchguard: FAIL: disabled hedge hook costs ${hedge_ns}ns/op (budget ${hedge_ns_budget}ns)" >&2
	exit 1
fi

# Guard 13: the disabled decision-log hook. Every audit append calls the
# export hook; with no -declog sink that hook is a nil Exporter whose
# Offer must collapse to a single pointer check — zero allocations,
# single-digit ns — so instrumenting the audit path costs nothing for
# PDPs that never export.
declog_ns_budget=${BENCHGUARD_MAX_DECLOG_NS:-100}
dout=$(go test -run '^$' -bench 'DisabledDeclogHook' -benchtime 1000000x -benchmem \
	./internal/declog)
echo "$dout"

dfield_of() {
	echo "$dout" | awk -v pat="$1" -v f="$2" '$1 ~ pat { print $f; exit }'
}

declog_ns=$(dfield_of '^BenchmarkDisabledDeclogHook(-[0-9]+)?$' 3)
declog_allocs=$(dfield_of '^BenchmarkDisabledDeclogHook(-[0-9]+)?$' 7)
if [ -z "$declog_ns" ] || [ -z "$declog_allocs" ]; then
	echo "benchguard: missing DisabledDeclogHook results" >&2
	exit 1
fi

echo "benchguard: disabled declog hook=${declog_ns}ns/op, $declog_allocs allocs/op, budget=${declog_ns_budget}ns"
if [ "$declog_allocs" -ne 0 ]; then
	echo "benchguard: FAIL: disabled declog hook allocates ($declog_allocs allocs/op, want 0)" >&2
	exit 1
fi
if ! awk -v ns="$declog_ns" -v max="$declog_ns_budget" 'BEGIN { exit !(ns <= max) }'; then
	echo "benchguard: FAIL: disabled declog hook costs ${declog_ns}ns/op (budget ${declog_ns_budget}ns)" >&2
	exit 1
fi
echo "benchguard: OK"
