#!/bin/sh
# Benchmark-regression smoke for CI: run the mediation benches (E1, E3,
# E11) with -benchmem and fail if the decision cache has regressed.
#
# Two guards, both on allocation counts (stable across CI hardware, unlike
# ns/op):
#   1. the warm cached path must allocate strictly less than the uncached
#      path on the same workload;
#   2. the warm cached path must stay under an absolute allocation budget,
#      so a key- or clone-heavy change cannot hide behind guard 1.
set -eu

cd "$(dirname "$0")/.."

budget=${BENCHGUARD_MAX_WARM_ALLOCS:-64}
out=$(go test -run '^$' \
	-bench 'E1RBACMediation|E3EntertainmentPolicy|E11CachedMediation' \
	-benchtime 100x -benchmem .)
echo "$out"

allocs_of() {
	echo "$out" | awk -v pat="$1" '$1 ~ pat { print $(NF-1); exit }'
}

warm=$(allocs_of 'E11CachedMediation/warm')
uncached=$(allocs_of 'E11CachedMediation/uncached')
if [ -z "$warm" ] || [ -z "$uncached" ]; then
	echo "benchguard: missing E11CachedMediation results" >&2
	exit 1
fi

echo "benchguard: warm=$warm allocs/op, uncached=$uncached allocs/op, budget=$budget"
if [ "$warm" -ge "$uncached" ]; then
	echo "benchguard: FAIL: warm cached path allocates as much as uncached ($warm >= $uncached)" >&2
	exit 1
fi
if [ "$warm" -gt "$budget" ]; then
	echo "benchguard: FAIL: warm cached path exceeds allocation budget ($warm > $budget)" >&2
	exit 1
fi

# Guard 3: a follower PDP's warm Decide path must not allocate more than
# the primary's on the same request — replication must hand back a System
# structurally identical to the original (E16).
rout=$(go test -run '^$' -bench 'E16ReplicatedMediation' \
	-benchtime 100x -benchmem ./internal/replica)
echo "$rout"

ralloc_of() {
	echo "$rout" | awk -v pat="$1" '$1 ~ pat { print $(NF-1); exit }'
}

primary=$(ralloc_of 'E16ReplicatedMediation/primary')
follower=$(ralloc_of 'E16ReplicatedMediation/follower')
if [ -z "$primary" ] || [ -z "$follower" ]; then
	echo "benchguard: missing E16ReplicatedMediation results" >&2
	exit 1
fi

echo "benchguard: primary=$primary allocs/op, follower=$follower allocs/op"
if [ "$follower" -gt "$primary" ]; then
	echo "benchguard: FAIL: replicated follower allocates more than its primary ($follower > $primary)" >&2
	exit 1
fi
echo "benchguard: OK"
