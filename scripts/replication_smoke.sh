#!/bin/sh
# Replication smoke for CI: boot a primary/follower grbacd pair on
# loopback, push a mutation through the primary's admin API, and assert
# the follower converges (lag 0, not stale, the mutation visible in its
# replicated state) using only the shipped binaries — the same drill an
# operator would run by hand.
set -eu

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
primary_port=${SMOKE_PRIMARY_PORT:-18125}
follower_port=${SMOKE_FOLLOWER_PORT:-18126}
primary="http://127.0.0.1:$primary_port"
follower="http://127.0.0.1:$follower_port"

cleanup() {
	[ -n "${primary_pid:-}" ] && kill "$primary_pid" 2>/dev/null || true
	[ -n "${follower_pid:-}" ] && kill "$follower_pid" 2>/dev/null || true
	rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

go build -o "$workdir/grbacd" ./cmd/grbacd
go build -o "$workdir/grbacctl" ./cmd/grbacctl

"$workdir/grbacd" -addr "127.0.0.1:$primary_port" -admin \
	>"$workdir/primary.log" 2>&1 &
primary_pid=$!
"$workdir/grbacd" -addr "127.0.0.1:$follower_port" -follow "$primary" \
	>"$workdir/follower.log" 2>&1 &
follower_pid=$!

# wait_until <description> <command...>: poll for up to ~10s.
wait_until() {
	desc=$1
	shift
	i=0
	until "$@" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "replication_smoke: FAIL: timed out waiting for $desc" >&2
			echo "--- primary.log ---" >&2
			cat "$workdir/primary.log" >&2
			echo "--- follower.log ---" >&2
			cat "$workdir/follower.log" >&2
			exit 1
		fi
		sleep 0.1
	done
}

wait_until "primary healthz" "$workdir/grbacctl" -server "$primary" health
wait_until "follower healthz" "$workdir/grbacctl" -server "$follower" health

# Mutate via the primary's admin API: a subject the stock policy lacks.
curl -sf -X POST "$primary/v1/admin/subjects" \
	-H 'Content-Type: application/json' \
	-d '{"id":"smoke-test-subject"}' >/dev/null

converged() {
	out=$("$workdir/grbacctl" -server "$follower" replication) || return 1
	echo "$out" | grep -q '^lag: 0$' || return 1
	echo "$out" | grep -q '^stale: false$' || return 1
	"$workdir/grbacctl" -server "$follower" state |
		grep -q '"smoke-test-subject"'
}
wait_until "follower convergence" converged

echo "replication_smoke: follower state after convergence:"
"$workdir/grbacctl" -server "$follower" replication

# Observability smoke: a decision against each node, then assert the
# /metrics expositions carry the decide histogram, the cache counters,
# and (on the follower) replication lag.
curl -sf -X POST "$primary/v1/check" -H 'Content-Type: application/json' \
	-d '{"subject":"alice","object":"tv","transaction":"use","environment":["weekday-free-time"]}' \
	>/dev/null
curl -sf -X POST "$follower/v1/check" -H 'Content-Type: application/json' \
	-d '{"subject":"alice","object":"tv","transaction":"use","environment":["weekday-free-time"]}' \
	>/dev/null

metrics_have() {
	url=$1
	family=$2
	curl -sf "$url/metrics" | grep -q "^$family" || {
		echo "replication_smoke: FAIL: $url/metrics missing $family" >&2
		exit 1
	}
}
metrics_have "$primary" 'grbac_http_request_duration_seconds_bucket{route="/v1/check"'
metrics_have "$primary" grbac_decision_cache_hits_total
metrics_have "$primary" grbac_decision_cache_misses_total
metrics_have "$primary" grbac_policy_snapshot_compiles_total
metrics_have "$follower" grbac_replica_lag_generations
metrics_have "$follower" grbac_replica_syncs_total
echo "replication_smoke: metrics exposition OK"
"$workdir/grbacctl" -server "$follower" top
echo "replication_smoke: OK"
