#!/bin/sh
# Decision-log + signed-bundle smoke for CI: boot grbacd with the export
# pipeline aimed at a file sink whose uploads stall mid-run (fault
# injection), flood decides through it, and assert the shipped binaries
# honor the pipeline's contracts end to end:
#   1. a stalled sink never blocks Decide — the flood keeps answering
#      within its deadline while the uploader is wedged;
#   2. loss under backpressure is counted, never silent —
#      grbac_declog_dropped_total moves while the sink is stalled;
#   3. uploads resume once the stall clears: chunk files appear,
#      gunzip + parse as JSONL decision records;
#   4. the bounded audit ring evicts with a counter
#      (grbac_audit_evicted_total) instead of growing without bound;
#   5. only signed, fresh bundles activate: grbacctl bundle
#      keygen/build/push flips a decision, a tampered bundle is refused
#      with 403 and changes nothing.
set -eu

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
port=${SMOKE_DECLOG_PORT:-18129}
server="http://127.0.0.1:$port"
chunks="$workdir/chunks"

cleanup() {
	for pid in ${flood_pids:-}; do kill "$pid" 2>/dev/null || true; done
	[ -n "${server_pid:-}" ] && kill "$server_pid" 2>/dev/null || true
	rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

go build -o "$workdir/grbacd" ./cmd/grbacd
go build -o "$workdir/grbacctl" ./cmd/grbacctl

cat >"$workdir/policy.grbac" <<'EOF'
subject role family-member;
subject role child extends family-member;
object role entertainment-devices;
env role weekday-free-time;
subject alice is child;
object tv is entertainment-devices;
transaction use;
grant child use entertainment-devices when weekday-free-time;
EOF

# The bundle later adds bob to the household, so his permit proves the
# push actually activated.
sed 's/subject alice is child;/subject alice is child;\nsubject bob is child;/' \
	"$workdir/policy.grbac" >"$workdir/policy2.grbac"

"$workdir/grbacctl" bundle keygen -key "$workdir/bundle.key" -pub "$workdir/bundle.pub"

# A 50ms flush interval seals a chunk per tick under load; the fault plan
# fails the first upload attempt (exercising retry/backoff) and stalls the
# second for 5s, so the bounded chunk queue overflows and sheds while the
# uploader is wedged, then delivery resumes on its own.
"$workdir/grbacd" -addr "127.0.0.1:$port" \
	-policy "$workdir/policy.grbac" \
	-audit-capacity 256 \
	-declog "$chunks" -declog-buffer 512 -declog-flush 50ms \
	-bundle-pub "$workdir/bundle.pub" \
	-faults 'declog.upload:error=stalled-collector,limit=1;declog.upload:delay=5s,after=1,limit=1' \
	>"$workdir/server.log" 2>&1 &
server_pid=$!

# wait_until <description> <command...>: poll for up to ~15s.
wait_until() {
	desc=$1
	shift
	i=0
	until "$@" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -gt 150 ]; then
			echo "declog_smoke: FAIL: timed out waiting for $desc" >&2
			echo "--- server.log ---" >&2
			cat "$workdir/server.log" >&2
			exit 1
		fi
		sleep 0.1
	done
}

wait_until "server healthz" curl -sf "$server/v1/healthz"

# metric_above <name> <floor>: scrape /metrics and require name > floor.
metric_above() {
	curl -s "$server/metrics" |
		awk -v name="$1" -v floor="$2" \
			'$1 == name && $2 + 0 > floor + 0 { found = 1 } END { exit !found }'
}

body='{"subject":"alice","object":"tv","transaction":"use","environment":["weekday-free-time"]}'

# Flood decides from four background loops for the whole stall window.
flood_pids=""
for _ in 1 2 3 4; do
	(
		while :; do
			curl -s -o /dev/null -X POST "$server/v1/decide" \
				-H 'Content-Type: application/json' -d "$body"
		done
	) &
	flood_pids="$flood_pids $!"
done

# Contract 2: while the uploader is wedged the bounded pipeline sheds and
# counts what it sheds.
wait_until "upload stall observed (grbac_declog_upload_failures_total > 0)" \
	metric_above grbac_declog_upload_failures_total 0
wait_until "loss counted under stall (grbac_declog_dropped_total > 0)" \
	metric_above grbac_declog_dropped_total 0
echo "declog_smoke: stalled sink sheds with a counter OK"

# Contract 1: with the uploader still wedged, a decide must answer well
# inside its deadline — export pressure never reaches the hot path.
curl -sf -m 2 -X POST "$server/v1/decide" \
	-H 'Content-Type: application/json' -d "$body" |
	grep -q '"allowed": *true' || {
	echo "declog_smoke: FAIL: decide blocked or denied during the sink stall" >&2
	cat "$workdir/server.log" >&2
	exit 1
}
echo "declog_smoke: Decide unaffected by the stalled sink OK"

# Contract 3: the stall clears on its own (fault limits exhausted) and
# delivery resumes — chunk files land and parse as JSONL records.
wait_until "uploads resumed (grbac_declog_uploaded_chunks_total > 0)" \
	metric_above grbac_declog_uploaded_chunks_total 0
wait_until "chunk files on disk" ls "$chunks"/chunk-*.jsonl.gz

for pid in $flood_pids; do kill "$pid" 2>/dev/null || true; done
flood_pids=""

first_chunk=$(ls "$chunks"/chunk-*.jsonl.gz | head -1)
gunzip -c "$first_chunk" | head -1 | grep -q '"subject":"alice"' || {
	echo "declog_smoke: FAIL: $first_chunk does not decode to decision JSONL" >&2
	gunzip -c "$first_chunk" | head -3 >&2 || true
	exit 1
}
echo "declog_smoke: uploads resumed, chunks decode OK"

# Contract 4: the flood pushed far more than 256 records through a
# 256-slot audit ring — eviction must be counted, not silent.
metric_above grbac_audit_evicted_total 0 || {
	echo "declog_smoke: FAIL: audit ring overflowed without counting evictions" >&2
	curl -s "$server/metrics" | grep grbac_audit >&2 || true
	exit 1
}
echo "declog_smoke: audit eviction counted OK"

# Contract 5: signed bundles. Build + sign revision 1 from the policy
# that adds bob; before activation bob is denied.
"$workdir/grbacctl" bundle build -policy "$workdir/policy2.grbac" \
	-revision 1 -key "$workdir/bundle.key" -out "$workdir/policy.bundle"
"$workdir/grbacctl" bundle verify -in "$workdir/policy.bundle" -pub "$workdir/bundle.pub"

if "$workdir/grbacctl" -server "$server" check -subject bob -object tv \
	-transaction use -env weekday-free-time >/dev/null 2>&1; then
	echo "declog_smoke: FAIL: bob permitted before the bundle activated" >&2
	exit 1
fi

# A tampered bundle must be refused (403) and change nothing.
sed 's/"bob"/"eve"/g' "$workdir/policy.bundle" >"$workdir/tampered.bundle"
if "$workdir/grbacctl" -server "$server" bundle push -in "$workdir/tampered.bundle" \
	>"$workdir/tampered.log" 2>&1; then
	echo "declog_smoke: FAIL: tampered bundle accepted" >&2
	cat "$workdir/tampered.log" >&2
	exit 1
fi
grep -q '403' "$workdir/tampered.log" || {
	echo "declog_smoke: FAIL: tampered bundle not refused with 403" >&2
	cat "$workdir/tampered.log" >&2
	exit 1
}
if "$workdir/grbacctl" -server "$server" check -subject bob -object tv \
	-transaction use -env weekday-free-time >/dev/null 2>&1; then
	echo "declog_smoke: FAIL: tampered bundle changed policy" >&2
	exit 1
fi

# The genuine bundle activates and flips the decision.
"$workdir/grbacctl" -server "$server" bundle push -in "$workdir/policy.bundle" >/dev/null
"$workdir/grbacctl" -server "$server" bundle status |
	grep -q '"revision": *1' || {
	echo "declog_smoke: FAIL: bundle status did not advance to revision 1" >&2
	"$workdir/grbacctl" -server "$server" bundle status >&2 || true
	exit 1
}
"$workdir/grbacctl" -server "$server" check -subject bob -object tv \
	-transaction use -env weekday-free-time >/dev/null || {
	echo "declog_smoke: FAIL: signed bundle did not activate" >&2
	exit 1
}
echo "declog_smoke: signed bundle activates, tampered bundle refused OK"
echo "declog_smoke: OK"
