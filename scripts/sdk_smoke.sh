#!/bin/sh
# Embedded-SDK smoke for CI: boot a primary grbacd on loopback and drive
# the examples/embedded program against it, asserting the SDK's three
# contracts end to end with the shipped binaries:
#   1. a locally-evaluable request is answered in-process from the
#      bootstrapped snapshot (source=local);
#   2. a nil-environment request — live-sensor state only the primary
#      holds — falls back over HTTP (source=remote);
#   3. an admin mutation on the primary flips the embedded decision via
#      watch-driven invalidation: the example blocks on the push signal,
#      never a polling sleep, and exits the moment the flip arrives.
set -eu

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
port=${SMOKE_SDK_PORT:-18127}
primary="http://127.0.0.1:$port"

cleanup() {
	[ -n "${primary_pid:-}" ] && kill "$primary_pid" 2>/dev/null || true
	[ -n "${wait_pid:-}" ] && kill "$wait_pid" 2>/dev/null || true
	rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

go build -o "$workdir/grbacd" ./cmd/grbacd
go build -o "$workdir/embedded" ./examples/embedded

"$workdir/grbacd" -addr "127.0.0.1:$port" -admin \
	>"$workdir/primary.log" 2>&1 &
primary_pid=$!

# wait_until <description> <command...>: poll for up to ~10s.
wait_until() {
	desc=$1
	shift
	i=0
	until "$@" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "sdk_smoke: FAIL: timed out waiting for $desc" >&2
			echo "--- primary.log ---" >&2
			cat "$workdir/primary.log" >&2
			for f in oneshot.log wait.log; do
				[ -f "$workdir/$f" ] || continue
				echo "--- $f ---" >&2
				cat "$workdir/$f" >&2
			done
			exit 1
		fi
		sleep 0.1
	done
}

wait_until "primary healthz" curl -sf "$primary/v1/healthz"

# Contract 1 + 2: one-shot run — a local decision from the embedded
# snapshot, then a live-environment decision over the remote fallback.
"$workdir/embedded" -primary "$primary" >"$workdir/oneshot.log" 2>&1
grep -q 'decide: allowed=true source=local stale=false' "$workdir/oneshot.log" || {
	echo "sdk_smoke: FAIL: no local permit in one-shot run" >&2
	cat "$workdir/oneshot.log" >&2
	exit 1
}
grep -q 'decide (live environment): .* source=remote' "$workdir/oneshot.log" || {
	echo "sdk_smoke: FAIL: live-environment flow did not fall back to the primary" >&2
	cat "$workdir/oneshot.log" >&2
	exit 1
}
echo "sdk_smoke: local mediation + remote fallback OK"

# Contract 3: start the example blocking on the push signal, then flip
# the stock policy with a deny rule through the primary's admin API. The
# example must observe the flip and exit on its own.
"$workdir/embedded" -primary "$primary" -wait-change -wait-timeout 30s \
	>"$workdir/wait.log" 2>&1 &
wait_pid=$!
wait_until "example synced and armed" \
	grep -q 'waiting for a primary mutation' "$workdir/wait.log"

curl -sf -X POST "$primary/v1/admin/permissions" \
	-H 'Content-Type: application/json' \
	-d '{"subject":"child","object":"entertainment-devices","environment":"weekday-free-time","transaction":"use","effect":"deny"}' \
	>/dev/null

if ! wait "$wait_pid"; then
	echo "sdk_smoke: FAIL: example did not observe the policy flip" >&2
	cat "$workdir/wait.log" >&2
	exit 1
fi
wait_pid=
grep -q 'flipped: allowed=false source=local' "$workdir/wait.log" || {
	echo "sdk_smoke: FAIL: flip line missing or not served locally" >&2
	cat "$workdir/wait.log" >&2
	exit 1
}
echo "sdk_smoke: watch-driven invalidation OK"
cat "$workdir/wait.log"
echo "sdk_smoke: OK"
