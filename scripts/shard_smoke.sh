#!/bin/sh
# Sharded-cluster smoke for CI: boot two grbacd shards, a grbacd -route
# routing tier in front of them, and a follower replicating the shared
# policy from shard A, then assert the sharding contracts end to end
# with the shipped binaries:
#   1. subjects registered through the router land on exactly one owning
#      shard (consistent-hash partitioning, no duplication);
#   2. routed decides answer for every subject regardless of owner;
#   3. cross-shard SubjectsInRole through the router unions both
#      partitions;
#   4. shared-policy replication still works behind the router: the
#      follower converges to shard A's generation;
#   5. shard-down degradation: with shard B killed, strict scatter
#      queries fail loudly (502 naming the dead shard), ?allow_partial=1
#      degrades to the reachable union, decides for shard-A subjects
#      keep working, and router health reports degraded.
set -eu

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
port_a=${SMOKE_SHARD_PORT_A:-18131}
port_b=${SMOKE_SHARD_PORT_B:-18132}
port_r=${SMOKE_SHARD_PORT_R:-18133}
port_f=${SMOKE_SHARD_PORT_F:-18134}
shard_a="http://127.0.0.1:$port_a"
shard_b="http://127.0.0.1:$port_b"
router="http://127.0.0.1:$port_r"
follower="http://127.0.0.1:$port_f"

cleanup() {
	for pid in "${pid_a:-}" "${pid_b:-}" "${pid_r:-}" "${pid_f:-}"; do
		[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	done
	rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

go build -o "$workdir/grbacd" ./cmd/grbacd
go build -o "$workdir/grbacctl" ./cmd/grbacctl

"$workdir/grbacd" -addr "127.0.0.1:$port_a" -admin >"$workdir/shard_a.log" 2>&1 &
pid_a=$!
"$workdir/grbacd" -addr "127.0.0.1:$port_b" -admin >"$workdir/shard_b.log" 2>&1 &
pid_b=$!
"$workdir/grbacd" -addr "127.0.0.1:$port_r" \
	-route "a=$shard_a,b=$shard_b" -shard-timeout 2s \
	>"$workdir/router.log" 2>&1 &
pid_r=$!
"$workdir/grbacd" -addr "127.0.0.1:$port_f" -follow "$shard_a" \
	>"$workdir/follower.log" 2>&1 &
pid_f=$!

# wait_until <description> <command...>: poll for up to ~10s.
wait_until() {
	desc=$1
	shift
	i=0
	until "$@" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "shard_smoke: FAIL: timed out waiting for $desc" >&2
			for f in shard_a.log shard_b.log router.log follower.log; do
				[ -f "$workdir/$f" ] || continue
				echo "--- $f ---" >&2
				cat "$workdir/$f" >&2
			done
			exit 1
		fi
		sleep 0.1
	done
}

wait_until "shard A healthz" curl -sf "$shard_a/v1/healthz"
wait_until "shard B healthz" curl -sf "$shard_b/v1/healthz"
wait_until "router healthz" curl -sf "$router/v1/healthz"
wait_until "follower healthz" curl -sf "$follower/v1/healthz"

# The shard map is served and both shards probe healthy.
"$workdir/grbacctl" -server "$router" shards
echo "shard_smoke: router serves the shard map, both shards reachable"

# Contract 1: register subjects through the router; each must exist on
# exactly one shard (the stock policy ships a child role to bind to).
subjects="smoke-ada smoke-bob smoke-cyd smoke-dee smoke-eve smoke-fay smoke-gus smoke-hal"
for sub in $subjects; do
	curl -sf -X POST "$router/v1/admin/subjects" \
		-H 'Content-Type: application/json' \
		-d "{\"id\":\"$sub\",\"roles\":[\"child\"]}" >/dev/null
done

count_on() {
	# count_on <shard-url>: how many smoke subjects this shard holds.
	n=0
	for sub in $subjects; do
		if curl -sf "$1/v1/query/subjects-in-role?role=child" | grep -q "\"$sub\""; then
			n=$((n + 1))
		fi
	done
	echo "$n"
}

on_a=$(count_on "$shard_a")
on_b=$(count_on "$shard_b")
echo "shard_smoke: partition: shard A holds $on_a, shard B holds $on_b of 8 subjects"
if [ $((on_a + on_b)) -ne 8 ]; then
	echo "shard_smoke: FAIL: partitions hold $on_a + $on_b subjects, want exactly 8 total" >&2
	exit 1
fi
if [ "$on_a" -eq 0 ] || [ "$on_b" -eq 0 ]; then
	echo "shard_smoke: FAIL: one shard owns every subject — hashing is not spreading" >&2
	exit 1
fi

# Contract 2: every subject decides through the router, whichever shard
# owns it (stock policy: a child may use the tv during weekday-free-time).
for sub in $subjects; do
	"$workdir/grbacctl" -server "$router" check \
		-subject "$sub" -object tv -transaction use -env weekday-free-time \
		>/dev/null || {
		echo "shard_smoke: FAIL: routed decide for $sub denied or errored" >&2
		exit 1
	}
done
echo "shard_smoke: routed decide OK for all 8 subjects"

# Contract 3: cross-shard SubjectsInRole unions both partitions.
union=$(curl -sf "$router/v1/query/subjects-in-role?role=child")
for sub in $subjects; do
	echo "$union" | grep -q "\"$sub\"" || {
		echo "shard_smoke: FAIL: scatter union is missing $sub" >&2
		echo "$union" >&2
		exit 1
	}
done
echo "shard_smoke: cross-shard SubjectsInRole union OK"

# Contract 4: the follower replicates shard A's shared policy and
# reports lag 0 once converged.
wait_until "follower convergence" sh -c \
	"\"$workdir/grbacctl\" -server \"$follower\" replication | grep -q '^lag: 0$'"
echo "shard_smoke: follower converged on shard A's policy"

# Contract 5: shard-down degradation. Kill shard B and assert the
# partial-failure semantics.
kill "$pid_b" 2>/dev/null
wait "$pid_b" 2>/dev/null || true
pid_b=
wait_until "router noticing shard B down" sh -c \
	"curl -s \"$router/v1/healthz\" | grep -q unreachable"

# 5a: strict scatter fails loudly, naming the dead shard only.
strict_status=$(curl -s -o "$workdir/strict.json" -w '%{http_code}' \
	"$router/v1/query/subjects-in-role?role=child")
if [ "$strict_status" != "502" ]; then
	echo "shard_smoke: FAIL: strict scatter with a dead shard returned $strict_status, want 502" >&2
	cat "$workdir/strict.json" >&2
	exit 1
fi
grep -q '"b"' "$workdir/strict.json" || {
	echo "shard_smoke: FAIL: strict scatter error does not name the dead shard" >&2
	cat "$workdir/strict.json" >&2
	exit 1
}

# 5b: allow_partial degrades to the reachable union and says so.
partial=$(curl -sf "$router/v1/query/subjects-in-role?role=child&allow_partial=1")
echo "$partial" | grep -q '"partial":\s*true' || echo "$partial" | grep -q '"partial": *true' || {
	echo "shard_smoke: FAIL: allow_partial reply is not marked partial" >&2
	echo "$partial" >&2
	exit 1
}

# 5c: shard A's subjects still decide through the router.
survivor=""
for sub in $subjects; do
	if echo "$partial" | grep -q "\"$sub\""; then
		survivor=$sub
		break
	fi
done
[ -n "$survivor" ] || {
	echo "shard_smoke: FAIL: partial union is empty with shard A alive" >&2
	exit 1
}
"$workdir/grbacctl" -server "$router" check \
	-subject "$survivor" -object tv -transaction use -env weekday-free-time \
	>/dev/null || {
	echo "shard_smoke: FAIL: decide for live-shard subject $survivor failed during degradation" >&2
	exit 1
}

# 5d: router health reports the degradation and grbacctl shards exits 1.
if "$workdir/grbacctl" -server "$router" shards >"$workdir/shards_down.log" 2>&1; then
	echo "shard_smoke: FAIL: grbacctl shards exited 0 with shard B dead" >&2
	cat "$workdir/shards_down.log" >&2
	exit 1
fi
grep -q UNREACHABLE "$workdir/shards_down.log" || {
	echo "shard_smoke: FAIL: grbacctl shards did not flag the dead shard" >&2
	cat "$workdir/shards_down.log" >&2
	exit 1
}
echo "shard_smoke: shard-down degradation OK (strict 502, partial union, live decides, degraded health)"
echo "shard_smoke: OK"
