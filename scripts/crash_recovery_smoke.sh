#!/bin/sh
# Crash-recovery smoke for CI: boot grbacd with a durable data directory,
# flood it with admin mutations, kill -9 mid-flood, restart from the same
# directory, and assert the durability contract with only the shipped
# binaries:
#   - the replication epoch survives the crash;
#   - the policy generation never regresses;
#   - every mutation acked before the kill is present after recovery;
#   - /v1/statsz shows the WAL replay that rebuilt the state;
#   - the recovered policy still serves decisions.
set -eu

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
port=${SMOKE_CRASH_PORT:-18137}
server="http://127.0.0.1:$port"
datadir="$workdir/data"

cleanup() {
	# Wait for the exit: shutdown writes a final checkpoint into the data
	# directory, and removing it mid-write leaves the rm half done.
	if [ -n "${server_pid:-}" ]; then
		kill "$server_pid" 2>/dev/null || true
		wait "$server_pid" 2>/dev/null || true
	fi
	rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

go build -o "$workdir/grbacd" ./cmd/grbacd
go build -o "$workdir/grbacctl" ./cmd/grbacctl

cat >"$workdir/policy.grbac" <<'EOF'
subject role family-member;
subject role child extends family-member;
object role entertainment-devices;
env role weekday-free-time;
subject alice is child;
object tv is entertainment-devices;
transaction use;
grant child use entertainment-devices when weekday-free-time;
EOF

# A huge checkpoint interval keeps every flooded mutation in the WAL, so
# the restart has to prove real replay rather than riding a checkpoint.
start_server() {
	"$workdir/grbacd" -addr "127.0.0.1:$port" -admin \
		-policy "$workdir/policy.grbac" \
		-data-dir "$datadir" -wal-checkpoint-every 100000 \
		>>"$workdir/server.log" 2>&1 &
	server_pid=$!
}

# wait_until <description> <command...>: poll for up to ~10s.
wait_until() {
	desc=$1
	shift
	i=0
	until "$@" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "crash_smoke: FAIL: timed out waiting for $desc" >&2
			echo "--- server.log ---" >&2
			cat "$workdir/server.log" >&2
			exit 1
		fi
		sleep 0.1
	done
}

# store_field <name>: pull one numeric/string field out of the "store"
# section of /v1/statsz (the section starts after its key; the first
# matching field inside it is the store's).
store_field() {
	"$workdir/grbacctl" -server "$server" stats |
		awk -v key="\"$1\":" '/"store":/ { in_store = 1 } in_store && index($0, key) { print $2; exit }' |
		tr -d '", '
}

start_server
wait_until "first boot healthz" "$workdir/grbacctl" -server "$server" health

epoch_before=$(store_field epoch)
if [ -z "$epoch_before" ]; then
	echo "crash_smoke: FAIL: no store epoch in statsz (is -data-dir wired?)" >&2
	exit 1
fi

# Phase 1: 30 acked mutations. Each curl -sf succeeding means the server
# acked the write, so each of these subjects must survive the crash.
i=0
while [ "$i" -lt 30 ]; do
	curl -sf -X POST "$server/v1/admin/subjects" \
		-H 'Content-Type: application/json' \
		-d "{\"id\":\"crash-sub-$i\"}" >/dev/null
	i=$((i + 1))
done
gen_before=$(store_field generation)

# Phase 2: keep the flood running and yank the process mid-write. Acks
# from this phase are deliberately unobserved — the point is that the
# kill lands while mutations are in flight.
(
	j=30
	while [ "$j" -lt 1000 ]; do
		curl -sf -X POST "$server/v1/admin/subjects" \
			-H 'Content-Type: application/json' \
			-d "{\"id\":\"flood-sub-$j\"}" >/dev/null 2>&1 || exit 0
		j=$((j + 1))
	done
) &
flood_pid=$!
sleep 0.3
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""
wait "$flood_pid" 2>/dev/null || true

# Restart from the wreckage.
start_server
wait_until "recovery healthz" "$workdir/grbacctl" -server "$server" health

epoch_after=$(store_field epoch)
gen_after=$(store_field generation)
replayed=$(store_field records)

if [ "$epoch_after" != "$epoch_before" ]; then
	echo "crash_smoke: FAIL: epoch changed across crash: $epoch_before -> $epoch_after" >&2
	exit 1
fi
if [ -z "$gen_after" ] || [ "$gen_after" -lt "$gen_before" ]; then
	echo "crash_smoke: FAIL: generation regressed: $gen_before -> $gen_after" >&2
	exit 1
fi
if [ -z "$replayed" ] || [ "$replayed" -lt 30 ]; then
	echo "crash_smoke: FAIL: statsz reports $replayed WAL records replayed, want >= 30" >&2
	exit 1
fi

state=$("$workdir/grbacctl" -server "$server" state)
i=0
while [ "$i" -lt 30 ]; do
	echo "$state" | grep -q "\"crash-sub-$i\"" || {
		echo "crash_smoke: FAIL: acked mutation crash-sub-$i lost in the crash" >&2
		exit 1
	}
	i=$((i + 1))
done

check=$(curl -sf -X POST "$server/v1/check" \
	-H 'Content-Type: application/json' \
	-d '{"subject":"alice","object":"tv","transaction":"use","environment":["weekday-free-time"]}')
echo "$check" | grep -q '"allowed": *true' || {
	echo "crash_smoke: FAIL: recovered policy no longer permits alice: $check" >&2
	exit 1
}

echo "crash_smoke: epoch $epoch_after preserved, generation $gen_before -> $gen_after, $replayed WAL records replayed"
echo "crash_smoke: OK"
