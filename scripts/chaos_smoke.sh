#!/bin/sh
# Chaos smoke for CI: boot a primary grbacd with fault injection armed
# (slow and panicking decision handlers) plus admission control, and a
# follower replicating through it. Flood the primary, then assert the
# overload-protection contract with only the shipped binaries:
#   - at least one request is shed with 429 + Retry-After;
#   - /v1/statsz reports shed > 0 and recovered_panics > 0;
#   - the follower still converges despite the chaos;
#   - the primary still answers healthz at the end.
set -eu

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
primary_port=${SMOKE_PRIMARY_PORT:-18135}
follower_port=${SMOKE_FOLLOWER_PORT:-18136}
primary="http://127.0.0.1:$primary_port"
follower="http://127.0.0.1:$follower_port"

cleanup() {
	[ -n "${primary_pid:-}" ] && kill "$primary_pid" 2>/dev/null || true
	[ -n "${follower_pid:-}" ] && kill "$follower_pid" 2>/dev/null || true
	rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

go build -o "$workdir/grbacd" ./cmd/grbacd
go build -o "$workdir/grbacctl" ./cmd/grbacctl

# Two admission slots, a 50ms wait, and an armed fault plan: half the
# admitted decisions stall 100ms (saturating the slots so the flood
# sheds), and every 13th admitted decision panics (exercising the
# recovery middleware).
"$workdir/grbacd" -addr "127.0.0.1:$primary_port" -admin \
	-max-inflight 2 -inflight-wait 50ms \
	-faults 'pdp.decide:delay=100ms,prob=0.5;pdp.decide:panic=chaos-smoke,every=13' \
	>"$workdir/primary.log" 2>&1 &
primary_pid=$!
"$workdir/grbacd" -addr "127.0.0.1:$follower_port" -follow "$primary" \
	>"$workdir/follower.log" 2>&1 &
follower_pid=$!

# wait_until <description> <command...>: poll for up to ~10s.
wait_until() {
	desc=$1
	shift
	i=0
	until "$@" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "chaos_smoke: FAIL: timed out waiting for $desc" >&2
			echo "--- primary.log ---" >&2
			cat "$workdir/primary.log" >&2
			echo "--- follower.log ---" >&2
			cat "$workdir/follower.log" >&2
			exit 1
		fi
		sleep 0.1
	done
}

wait_until "primary healthz" "$workdir/grbacctl" -server "$primary" health
wait_until "follower healthz" "$workdir/grbacctl" -server "$follower" health

body='{"subject":"alice","object":"tv","transaction":"use","environment":["weekday-free-time"]}'

# Flood: 40 concurrent checks against 2 slots of 100ms-stalled mediation.
# Keep every response's status line + headers for the shed assertions.
# Wait on the curl pids explicitly: a bare `wait` would also wait on the
# grbacd background processes, which never exit.
flood_pids=""
i=0
while [ "$i" -lt 40 ]; do
	curl -s -o /dev/null -D "$workdir/resp.$i.headers" \
		-X POST "$primary/v1/check" \
		-H 'Content-Type: application/json' -d "$body" &
	flood_pids="$flood_pids $!"
	i=$((i + 1))
done
for pid in $flood_pids; do
	wait "$pid" || true
done

# Panics fire every 13th admitted decision; the flood may shed too many to
# get there, so drive sequential traffic until the gauge moves.
panics_recovered() {
	"$workdir/grbacctl" -server "$primary" stats |
		grep -q '"recovered_panics": *[1-9]'
}
drive_and_check() {
	curl -s -o /dev/null -X POST "$primary/v1/check" \
		-H 'Content-Type: application/json' -d "$body"
	panics_recovered
}
wait_until "a recovered panic" drive_and_check

shed=$(grep -l '^HTTP/1.1 429' "$workdir"/resp.*.headers | wc -l)
if [ "$shed" -lt 1 ]; then
	echo "chaos_smoke: FAIL: no request shed with 429 (flood too gentle?)" >&2
	exit 1
fi
for f in $(grep -l '^HTTP/1.1 429' "$workdir"/resp.*.headers); do
	if ! grep -qi '^Retry-After:' "$f"; then
		echo "chaos_smoke: FAIL: 429 without Retry-After in $f" >&2
		cat "$f" >&2
		exit 1
	fi
done

stats=$("$workdir/grbacctl" -server "$primary" stats)
echo "$stats" | grep -q '"shed": *[1-9]' || {
	echo "chaos_smoke: FAIL: statsz shed not positive: $stats" >&2
	exit 1
}

# The follower must converge despite the primary's chaos (decide-path
# faults never touch the replication feed).
curl -sf -X POST "$primary/v1/admin/subjects" \
	-H 'Content-Type: application/json' \
	-d '{"id":"chaos-smoke-subject"}' >/dev/null
converged() {
	out=$("$workdir/grbacctl" -server "$follower" replication) || return 1
	echo "$out" | grep -q '^lag: 0$' || return 1
	"$workdir/grbacctl" -server "$follower" state |
		grep -q '"chaos-smoke-subject"'
}
wait_until "follower convergence under chaos" converged

wait_until "primary healthz after the storm" "$workdir/grbacctl" -server "$primary" health

echo "chaos_smoke: $shed/40 flood requests shed with 429 + Retry-After"
echo "chaos_smoke: primary gauges after the storm:"
echo "$stats" | grep -E '"(shed|recovered_panics|inflight_limit)"' || true
echo "chaos_smoke: OK"
