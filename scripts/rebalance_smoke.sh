#!/bin/sh
# Online-rebalance smoke for CI: boot two grbacd shards and a
# rebalance-capable routing tier (-route + -data-dir), put the cluster
# under continuous decide load, then grow it to three shards with
# `grbacctl rebalance add` and assert the online-rebalance contracts
# end to end with the shipped binaries:
#   1. the rebalance commits: status settles on "done", the router's
#      map version bumps, and the new shard joins the map;
#   2. zero decide failures while subjects migrated (dual-ownership
#      handoff: old owners forward, then redirect);
#   3. the post-state is balanced: every shard (including the new one)
#      owns at least one subject, and the partitions sum exactly;
#   4. the shard map converges on clients too: a shard-aware SDK
#      process (examples/shardwatch) sees the committed version via the
#      map watch and can still decide every subject;
#   5. the committed map is durable: a restarted router boots with the
#      rebalanced map, not the stale -route flag list.
set -eu

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
port_a=${SMOKE_REBAL_PORT_A:-18141}
port_b=${SMOKE_REBAL_PORT_B:-18142}
port_c=${SMOKE_REBAL_PORT_C:-18143}
port_r=${SMOKE_REBAL_PORT_R:-18144}
shard_a="http://127.0.0.1:$port_a"
shard_b="http://127.0.0.1:$port_b"
shard_c="http://127.0.0.1:$port_c"
router="http://127.0.0.1:$port_r"

cleanup() {
	rm -f "$workdir/load_on"
	for pid in "${pid_a:-}" "${pid_b:-}" "${pid_c:-}" "${pid_r:-}" "${pid_load:-}" "${pid_watch:-}"; do
		[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	done
	rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

go build -o "$workdir/grbacd" ./cmd/grbacd
go build -o "$workdir/grbacctl" ./cmd/grbacctl
go build -o "$workdir/shardwatch" ./examples/shardwatch

"$workdir/grbacd" -addr "127.0.0.1:$port_a" -admin >"$workdir/shard_a.log" 2>&1 &
pid_a=$!
"$workdir/grbacd" -addr "127.0.0.1:$port_b" -admin >"$workdir/shard_b.log" 2>&1 &
pid_b=$!
"$workdir/grbacd" -addr "127.0.0.1:$port_r" \
	-route "a=$shard_a,b=$shard_b" -shard-timeout 2s \
	-data-dir "$workdir/router-data" -shard-probe-interval 250ms \
	>"$workdir/router.log" 2>&1 &
pid_r=$!

# wait_until <description> <command...>: poll for up to ~15s.
wait_until() {
	desc=$1
	shift
	i=0
	until "$@" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -gt 150 ]; then
			echo "rebalance_smoke: FAIL: timed out waiting for $desc" >&2
			for f in shard_a.log shard_b.log shard_c.log router.log watch.log; do
				[ -f "$workdir/$f" ] || continue
				echo "--- $f ---" >&2
				cat "$workdir/$f" >&2
			done
			exit 1
		fi
		sleep 0.1
	done
}

wait_until "shard A healthz" curl -sf "$shard_a/v1/healthz"
wait_until "shard B healthz" curl -sf "$shard_b/v1/healthz"
wait_until "router healthz" curl -sf "$router/v1/healthz"

# Register subjects through the router (stock policy ships role child).
subjects=""
for i in 0 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20 21 22 23; do
	sub="rebal-$i"
	subjects="$subjects $sub"
	curl -sf -X POST "$router/v1/admin/subjects" \
		-H 'Content-Type: application/json' \
		-d "{\"id\":\"$sub\",\"roles\":[\"child\"]}" >/dev/null
done
echo "rebalance_smoke: 24 subjects registered through the router"

# Continuous decide load through the router for the whole rebalance
# window; every non-permit is recorded.
: >"$workdir/decide_failures"
touch "$workdir/load_on"
(
	rounds=0
	while [ -f "$workdir/load_on" ]; do
		for sub in $subjects; do
			body="{\"subject\":\"$sub\",\"object\":\"tv\",\"transaction\":\"use\",\"environment\":[\"weekday-free-time\"]}"
			out=$(curl -s -X POST "$router/v1/check" \
				-H 'Content-Type: application/json' -d "$body" || echo curl-error)
			case $out in
			*'"allowed":true'*) ;;
			*) echo "$sub: $out" >>"$workdir/decide_failures" ;;
			esac
		done
		rounds=$((rounds + 1))
		echo "$rounds" >"$workdir/load_rounds"
	done
) &
pid_load=$!

# A shard-aware SDK rides the map watch in parallel: it must see the
# committed v2 map and still decide every subject afterwards.
"$workdir/shardwatch" -router "$router" -want-version 2 -timeout 60s \
	-subjects "$(echo $subjects | tr ' ' ',')" >"$workdir/watch.log" 2>&1 &
pid_watch=$!

# Grow the cluster online: boot shard C, rebalance onto it, wait for
# the run to finish.
"$workdir/grbacd" -addr "127.0.0.1:$port_c" -admin >"$workdir/shard_c.log" 2>&1 &
pid_c=$!
wait_until "shard C healthz" curl -sf "$shard_c/v1/healthz"

"$workdir/grbacctl" -server "$router" rebalance add -id c -addr "$shard_c" -wait 60s \
	>"$workdir/rebalance.log" 2>&1 || {
	echo "rebalance_smoke: FAIL: rebalance add did not complete" >&2
	cat "$workdir/rebalance.log" >&2
	exit 1
}
grep -q '"phase": "done"' "$workdir/rebalance.log" || {
	echo "rebalance_smoke: FAIL: rebalance status never reached done" >&2
	cat "$workdir/rebalance.log" >&2
	exit 1
}
echo "rebalance_smoke: rebalance add committed"

# Contract 1: the router's map bumped to v2 and contains shard c.
map=$(curl -sf "$router/v1/shard/map")
echo "$map" | grep -q '"version":2' || {
	echo "rebalance_smoke: FAIL: router map did not reach v2: $map" >&2
	exit 1
}
echo "$map" | grep -q '"c"' || {
	echo "rebalance_smoke: FAIL: committed map lacks shard c: $map" >&2
	exit 1
}

# Let the load run a little against the committed map, then stop it.
sleep 1
rm -f "$workdir/load_on"
wait "$pid_load" 2>/dev/null || true
pid_load=

# Contract 2: zero failed decides across the whole window.
if [ -s "$workdir/decide_failures" ]; then
	echo "rebalance_smoke: FAIL: decides failed during rebalance:" >&2
	cat "$workdir/decide_failures" >&2
	exit 1
fi
echo "rebalance_smoke: zero failed decides across $(cat "$workdir/load_rounds" 2>/dev/null || echo '?') load rounds"

# Contract 3: balanced post-state — every shard owns at least one
# subject and the partitions sum exactly (residency, not hashing:
# moved subjects were deleted from their old owner).
count_on() {
	n=0
	for sub in $subjects; do
		if curl -sf "$1/v1/query/subjects-in-role?role=child" | grep -q "\"$sub\""; then
			n=$((n + 1))
		fi
	done
	echo "$n"
}
on_a=$(count_on "$shard_a")
on_b=$(count_on "$shard_b")
on_c=$(count_on "$shard_c")
echo "rebalance_smoke: post-state: a=$on_a b=$on_b c=$on_c of 24"
if [ $((on_a + on_b + on_c)) -ne 24 ]; then
	echo "rebalance_smoke: FAIL: partitions hold $on_a+$on_b+$on_c subjects, want exactly 24" >&2
	exit 1
fi
if [ "$on_a" -eq 0 ] || [ "$on_b" -eq 0 ] || [ "$on_c" -eq 0 ]; then
	echo "rebalance_smoke: FAIL: a shard owns no subjects — rebalance did not spread" >&2
	exit 1
fi

# Contract 4: the SDK watcher converged and decided every subject.
wait "$pid_watch" || {
	echo "rebalance_smoke: FAIL: SDK shardwatch did not converge or decide:" >&2
	cat "$workdir/watch.log" >&2
	exit 1
}
pid_watch=
grep -q 'converged map v2' "$workdir/watch.log" || {
	echo "rebalance_smoke: FAIL: SDK never reported map v2" >&2
	cat "$workdir/watch.log" >&2
	exit 1
}
echo "rebalance_smoke: SDK converged on map v2 and all 24 subjects decide"

# Contract 5: the committed map survives a router restart (the stale
# -route flag list must NOT win over the persisted v2 map).
kill "$pid_r" 2>/dev/null
wait "$pid_r" 2>/dev/null || true
"$workdir/grbacd" -addr "127.0.0.1:$port_r" \
	-route "a=$shard_a,b=$shard_b" -shard-timeout 2s \
	-data-dir "$workdir/router-data" \
	>"$workdir/router2.log" 2>&1 &
pid_r=$!
wait_until "restarted router healthz" curl -sf "$router/v1/healthz"
map2=$(curl -sf "$router/v1/shard/map")
echo "$map2" | grep -q '"version":2' || {
	echo "rebalance_smoke: FAIL: restarted router lost the committed map: $map2" >&2
	cat "$workdir/router2.log" >&2
	exit 1
}
echo "rebalance_smoke: committed map survived router restart"
echo "rebalance_smoke: OK"
