# Standard developer entry points; everything is plain `go` underneath.

.PHONY: all build vet test race bench benchguard replication-smoke chaos-smoke crash-smoke sdk-smoke shard-smoke rebalance-smoke declog-smoke fuzz cover experiments fmt

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# Benchmark-regression smoke: runs the E1/E3/E11 benches and fails if the
# cached decision path stops beating the uncached one (see the script).
benchguard:
	./scripts/benchguard.sh

# End-to-end replication drill: boots a primary/follower grbacd pair on
# loopback and asserts convergence with the shipped binaries.
replication-smoke:
	./scripts/replication_smoke.sh

# End-to-end chaos drill: boots grbacd with fault injection + admission
# control armed, floods it, and asserts the overload-protection contract
# (429 + Retry-After, recovered panics, follower convergence).
chaos-smoke:
	./scripts/chaos_smoke.sh

# End-to-end durability drill: boots grbacd with a data directory, kills
# it -9 mid-mutation-flood, restarts it, and asserts the epoch survived,
# no acked mutation was lost, and the recovered policy still decides.
crash-smoke:
	./scripts/crash_recovery_smoke.sh

# End-to-end embedded-SDK drill: boots a primary grbacd and drives the
# examples/embedded program through local mediation, remote fallback,
# and watch-driven invalidation after an admin mutation.
sdk-smoke:
	./scripts/sdk_smoke.sh

# End-to-end sharding drill: boots two shards + a routing tier + a
# follower and asserts partitioning, routed decides, scatter unions,
# replication behind the router, and shard-down degradation.
shard-smoke:
	./scripts/shard_smoke.sh

# End-to-end online-rebalance drill: grows a two-shard cluster to three
# under continuous decide load and asserts zero failed decides, balanced
# residency, SDK map-watch convergence, and map durability on restart.
rebalance-smoke:
	./scripts/rebalance_smoke.sh

# End-to-end decision-log + bundle drill: floods decides through an
# export sink that stalls mid-run and asserts loss is counted (never
# silent, never blocking Decide), uploads resume, chunks decode, audit
# eviction is counted, and only signed fresh bundles activate.
declog-smoke:
	./scripts/declog_smoke.sh

# Run every native fuzz target for a short budget each.
fuzz:
	go test -run '^$$' -fuzz FuzzDecide -fuzztime 10s ./internal/core
	go test -run '^$$' -fuzz FuzzParse -fuzztime 10s ./internal/temporal
	go test -run '^$$' -fuzz FuzzParse -fuzztime 10s ./internal/policy
	go test -run '^$$' -fuzz FuzzWALReplay -fuzztime 10s ./internal/store

cover:
	go test -cover ./...

experiments:
	go run ./cmd/grbac-bench

fmt:
	gofmt -w .
