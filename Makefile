# Standard developer entry points; everything is plain `go` underneath.

.PHONY: all build vet test race bench cover experiments fmt

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

cover:
	go test -cover ./...

experiments:
	go run ./cmd/grbac-bench

fmt:
	gofmt -w .
