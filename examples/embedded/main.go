// Command embedded demonstrates the embedded PEP SDK: instead of asking
// the PDP over HTTP per request, the process bootstraps a full policy
// snapshot from a primary grbacd, rides its watch feed, and mediates
// in-process at memory speed. Start a primary first:
//
//	grbacd -addr :8125 -admin &
//	go run ./examples/embedded -primary http://127.0.0.1:8125
//
// The program answers one locally-evaluable request from the embedded
// snapshot, then one nil-environment request (which only the primary's
// live sensors can answer, so it falls back over HTTP). With
// -wait-change it then blocks on the push-invalidation signal until a
// policy mutation on the primary flips the local decision — grant a
// deny rule via the admin API and watch the flip arrive with no polling:
//
//	curl -X POST http://127.0.0.1:8125/v1/admin/permissions \
//	  -H 'Content-Type: application/json' \
//	  -d '{"subject":"child","object":"entertainment-devices",
//	       "environment":"weekday-free-time","transaction":"use","effect":"deny"}'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	grbac "github.com/aware-home/grbac"
	"github.com/aware-home/grbac/sdk"
)

func main() {
	primary := flag.String("primary", "http://127.0.0.1:8125", "primary PDP base URL")
	waitChange := flag.Bool("wait-change", false, "after the demo decisions, block until a primary mutation flips the local decision")
	waitTimeout := flag.Duration("wait-timeout", time.Minute, "give up on -wait-change after this long")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	c, err := sdk.New(ctx, *primary)
	cancel()
	if err != nil {
		log.Fatalf("bootstrap from %s: %v", *primary, err)
	}
	defer c.Close()
	fmt.Printf("synced: generation=%d\n", c.Generation())

	// The stock Aware Home policy: alice is a child, the tv is an
	// entertainment device, and children may use entertainment devices
	// during weekday free time. The caller asserts the environment role,
	// so the embedded snapshot can answer without leaving the process.
	req := grbac.Request{
		Subject: "alice", Object: "tv", Transaction: "use",
		Environment: []grbac.RoleID{"weekday-free-time"},
	}
	d, err := c.Decide(context.Background(), req)
	if err != nil {
		log.Fatalf("local decide: %v", err)
	}
	fmt.Printf("decide: allowed=%v source=%s stale=%v\n", d.Allowed, d.Source, d.Stale)

	// A nil environment means "consult the live environment sensors" —
	// state only the primary holds — so the SDK routes this one over HTTP.
	live := grbac.Request{Subject: "alice", Object: "tv", Transaction: "use"}
	ld, err := c.Decide(context.Background(), live)
	if err != nil {
		log.Fatalf("remote decide: %v", err)
	}
	fmt.Printf("decide (live environment): allowed=%v source=%s\n", ld.Allowed, ld.Source)

	if !*waitChange {
		return
	}

	fmt.Printf("waiting for a primary mutation to flip the decision (allowed=%v now)...\n", d.Allowed)
	was := d.Allowed
	deadline := time.After(*waitTimeout)
	for {
		// Arm the signal before re-checking so a flip cannot slip between
		// the decision and the wait.
		ch := c.PolicyChanged()
		d, err := c.Decide(context.Background(), req)
		if err != nil {
			log.Fatalf("decide during wait: %v", err)
		}
		if d.Allowed != was {
			fmt.Printf("flipped: allowed=%v source=%s generation=%d\n",
				d.Allowed, d.Source, c.Generation())
			return
		}
		select {
		case <-ch:
		case <-deadline:
			log.Fatalf("no policy change within %v", *waitTimeout)
		}
	}
}
