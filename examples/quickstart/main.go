// Command quickstart is the smallest possible GRBAC program: one subject
// role, one object role, one environment role, one rule — the §5.1 policy
// "any child can use entertainment devices on weekdays during free time"
// reduced to a single mediation call.
package main

import (
	"fmt"
	"log"

	grbac "github.com/aware-home/grbac"
)

func main() {
	sys := grbac.NewSystem()

	steps := []error{
		// Declare the three role kinds.
		sys.AddRole(grbac.Role{ID: "child", Kind: grbac.SubjectRole}),
		sys.AddRole(grbac.Role{ID: "entertainment-devices", Kind: grbac.ObjectRole}),
		sys.AddRole(grbac.Role{ID: "weekday-free-time", Kind: grbac.EnvironmentRole}),
		// The household.
		sys.AddSubject("alice"),
		sys.AssignSubjectRole("alice", "child"),
		sys.AddObject("tv"),
		sys.AssignObjectRole("tv", "entertainment-devices"),
		sys.AddTransaction(grbac.SimpleTransaction("use")),
		// The single rule of the paper's §5.1.
		sys.Grant(grbac.Permission{
			Subject:     "child",
			Object:      "entertainment-devices",
			Environment: "weekday-free-time",
			Transaction: "use",
			Effect:      grbac.Permit,
			Description: "any child can use entertainment devices on weekdays during free time",
		}),
	}
	for _, err := range steps {
		if err != nil {
			log.Fatal(err)
		}
	}

	// During the window: the environment role is active.
	d, err := sys.Decide(grbac.Request{
		Subject: "alice", Object: "tv", Transaction: "use",
		Environment: []grbac.RoleID{"weekday-free-time"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Monday 8pm : alice uses tv -> %s\n", d.Effect)
	fmt.Print(d.Explain())

	// Outside the window: no active environment role, default deny.
	d, err = sys.Decide(grbac.Request{
		Subject: "alice", Object: "tv", Transaction: "use",
		Environment: []grbac.RoleID{},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Saturday   : alice uses tv -> %s (%s)\n", d.Effect, d.Reason)
}
