// Command mlsgateway demonstrates the paper's §6 subsumption claim for
// multilevel security: a Bell–LaPadula lattice (no read up, no write down)
// is encoded into GRBAC roles and permissions, the two systems are shown
// deciding identically over a document store, and then the GRBAC side adds
// a time-conditioned rule that no lattice assignment could express.
package main

import (
	"fmt"
	"log"

	grbac "github.com/aware-home/grbac"
	"github.com/aware-home/grbac/internal/baseline/mls"
)

func main() {
	// A small classified document gateway.
	lattice := mls.NewSystem()
	subjects := map[grbac.SubjectID]mls.Level{
		"private": mls.Unclassified,
		"officer": mls.Secret,
		"general": mls.TopSecret,
	}
	objects := map[grbac.ObjectID]mls.Level{
		"bulletin":     mls.Unclassified,
		"warplan":      mls.Secret,
		"launch-codes": mls.TopSecret,
	}
	for s, l := range subjects {
		if err := lattice.Clear(s, l); err != nil {
			log.Fatal(err)
		}
	}
	for o, l := range objects {
		if err := lattice.Classify(o, l); err != nil {
			log.Fatal(err)
		}
	}

	encoded, err := lattice.EncodeGRBAC()
	if err != nil {
		log.Fatal(err)
	}

	subjectOrder := []grbac.SubjectID{"private", "officer", "general"}
	objectOrder := []grbac.ObjectID{"bulletin", "warplan", "launch-codes"}

	fmt.Println("Bell-LaPadula vs its GRBAC encoding (R = read, W = write):")
	fmt.Printf("%-9s", "")
	for _, o := range objectOrder {
		fmt.Printf("  %-14s", o)
	}
	fmt.Println()
	for _, s := range subjectOrder {
		fmt.Printf("%-9s", s)
		for _, o := range objectOrder {
			cell := ""
			for _, verb := range []grbac.TransactionID{"read", "write"} {
				var mlsOK bool
				if verb == "read" {
					mlsOK = lattice.CanRead(s, o)
				} else {
					mlsOK = lattice.CanWrite(s, o)
				}
				grbacOK, err := encoded.CheckAccess(grbac.Request{
					Subject: s, Object: o, Transaction: verb,
					Environment: []grbac.RoleID{},
				})
				if err != nil {
					log.Fatal(err)
				}
				if mlsOK != grbacOK {
					log.Fatalf("DIVERGENCE at (%s, %s, %s)", s, o, verb)
				}
				mark := "-"
				if mlsOK {
					mark = string(verb[0] - 32) // R or W
				}
				cell += mark
			}
			fmt.Printf("  %-14s", cell)
		}
		fmt.Println()
	}
	fmt.Println("\nevery cell agreed: the encoding is decision-equivalent")

	// Now the converse: GRBAC adds "the general may read the warplan only
	// during declared exercises" — a rule whose outcome varies with
	// environment state. MLS decisions are a pure function of the two
	// levels, so no assignment reproduces this.
	if err := encoded.AddRole(grbac.Role{ID: "exercise", Kind: grbac.EnvironmentRole}); err != nil {
		log.Fatal(err)
	}
	if err := encoded.AddRole(grbac.Role{ID: "exercise-planners", Kind: grbac.SubjectRole}); err != nil {
		log.Fatal(err)
	}
	if err := encoded.AssignSubjectRole("general", "exercise-planners"); err != nil {
		log.Fatal(err)
	}
	if err := encoded.AddObject("exercise-scenario"); err != nil {
		log.Fatal(err)
	}
	if err := encoded.AddRole(grbac.Role{ID: "scenarios", Kind: grbac.ObjectRole}); err != nil {
		log.Fatal(err)
	}
	if err := encoded.AssignObjectRole("exercise-scenario", "scenarios"); err != nil {
		log.Fatal(err)
	}
	if err := encoded.Grant(grbac.Permission{
		Subject: "exercise-planners", Object: "scenarios",
		Environment: "exercise", Transaction: "read", Effect: grbac.Permit,
	}); err != nil {
		log.Fatal(err)
	}

	during, err := encoded.CheckAccess(grbac.Request{
		Subject: "general", Object: "exercise-scenario", Transaction: "read",
		Environment: []grbac.RoleID{"exercise"},
	})
	if err != nil {
		log.Fatal(err)
	}
	outside, err := encoded.CheckAccess(grbac.Request{
		Subject: "general", Object: "exercise-scenario", Transaction: "read",
		Environment: []grbac.RoleID{},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGRBAC-only rule: general reads exercise-scenario during exercise -> %v\n", during)
	fmt.Printf("                 same request outside an exercise              -> %v\n", outside)
	fmt.Println("a time-varying decision is outside any MLS lattice: the subsumption is strict")
}
