// Command cyberfridge models the paper's §2 Cyberfridge application — a
// refrigerator whose inventory is "accessible from anywhere" and which can
// reorder food automatically — together with §3's repairman policy: the
// dishwasher repair technician gets access "only while he is inside the
// home on January 17, 2000, between 8:00 a.m. and 1:00 p.m."
//
// The example uses the policy language directly, compiling a small
// application policy at startup, and walks through the repairman's day.
package main

import (
	"fmt"
	"log"
	"time"

	grbac "github.com/aware-home/grbac"
)

const fridgePolicy = `
subject role family-member;
subject role parent extends family-member;
subject role child extends family-member;
subject role service-agent;
subject role fridge-service-tech extends service-agent;

object role inventory;
object role grocery-orders;
object role kitchen-appliances;

env role anytime when time "always";
env role service-window when all(
    time "between 2000-01-17T08:00:00Z and 2000-01-17T13:00:00Z",
    subject-attr location == "kitchen");

subject mom is parent;
subject bobby is child;
subject tech is fridge-service-tech;

object fridge-contents is inventory;
object milk-order is grocery-orders;
object fridge is kitchen-appliances;

transaction read;
transaction reorder;
transaction service;

# Anyone in the family can check what's in the fridge, from anywhere.
grant family-member read inventory when anytime;
# Only parents may actually place grocery orders.
grant parent reorder grocery-orders when anytime;
# The service tech can work on the fridge only in the window, in the kitchen.
grant fridge-service-tech service kitchen-appliances when service-window;
`

func main() {
	// Build over our own environment store so the example can move the
	// technician around (in the full Aware Home the House model maintains
	// locations).
	store := grbac.NewEnvironmentStore()
	sys, engine, err := grbac.BuildPolicyWithStore(fridgePolicy, store)
	if err != nil {
		log.Fatal(err)
	}

	decide := func(at time.Time, sub grbac.SubjectID, tx grbac.TransactionID, obj grbac.ObjectID) {
		d, err := sys.Decide(grbac.Request{
			Subject: sub, Object: obj, Transaction: tx,
			Environment: engine.ActiveRolesAt(at, sub),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s  %-5s %-8s %-14s -> %s\n",
			at.Format("Jan 02 15:04"), sub, tx, obj, d.Effect)
	}

	fmt.Println("Cyberfridge: family access (any time, any place)")
	sunday := time.Date(2000, 1, 16, 22, 0, 0, 0, time.UTC)
	decide(sunday, "mom", "read", "fridge-contents")
	decide(sunday, "bobby", "read", "fridge-contents")
	decide(sunday, "mom", "reorder", "milk-order")
	decide(sunday, "bobby", "reorder", "milk-order") // children don't shop

	fmt.Println("\nRepair visit: January 17, 2000, window 08:00-13:00")
	inWindow := time.Date(2000, 1, 17, 10, 0, 0, 0, time.UTC)
	afterWindow := time.Date(2000, 1, 17, 14, 0, 0, 0, time.UTC)

	fmt.Println("tech still outside the house:")
	decide(inWindow, "tech", "service", "fridge")

	fmt.Println("tech walks into the kitchen:")
	store.Set("location.tech", grbac.EnvString("kitchen"))
	decide(inWindow, "tech", "service", "fridge")

	fmt.Println("tech lingers past 1:00 p.m.:")
	decide(afterWindow, "tech", "service", "fridge")

	fmt.Println("and the tech never had inventory access:")
	decide(inWindow, "tech", "read", "fridge-contents")
}
