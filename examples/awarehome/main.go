// Command awarehome drives the paper's complete §5.1 scenario on the full
// simulated Aware Home: the Figure 2 household, the declarative default
// policy, and a clock sweep across a week showing exactly when the
// children's entertainment access opens and closes.
package main

import (
	"fmt"
	"log"
	"time"

	grbac "github.com/aware-home/grbac"
)

func main() {
	// Monday, January 17, 2000 — the paper's own date.
	start := time.Date(2000, 1, 17, 0, 0, 0, 0, time.UTC)
	hh, err := grbac.NewHousehold(start)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("The Aware Home: \"any child can use entertainment devices")
	fmt.Println("on weekdays during free time\" (one GRBAC rule)")
	fmt.Println()
	fmt.Println("day        06:00  12:00  18:00  19:30  21:00  22:30")
	fmt.Println("---------  -----  -----  -----  -----  -----  -----")

	probes := []time.Duration{
		6 * time.Hour, 12 * time.Hour, 18 * time.Hour,
		19*time.Hour + 30*time.Minute, 21 * time.Hour, 22*time.Hour + 30*time.Minute,
	}
	for day := 0; day < 7; day++ {
		dayStart := start.AddDate(0, 0, day)
		fmt.Printf("%-9s ", dayStart.Weekday())
		for _, p := range probes {
			hh.Clock.Set(dayStart.Add(p))
			d, err := hh.Decide("alice", "tv", "use")
			if err != nil {
				log.Fatal(err)
			}
			cell := "  -  "
			if d.Allowed {
				cell = " TV! "
			}
			fmt.Printf(" %s ", cell)
		}
		fmt.Println()
	}

	// The rest of the household policy at Monday 8pm.
	hh.Clock.Set(start.Add(20 * time.Hour))
	fmt.Println()
	fmt.Println("Monday 8:00 p.m., other requests:")
	requests := []struct {
		subject grbac.SubjectID
		object  grbac.ObjectID
		tx      grbac.TransactionID
	}{
		{"bobby", "game-console", "use"},
		{"alice", "oven", "use"},
		{"mom", "oven", "use"},
		{"alice", "movie-pg", "view"},
		{"alice", "movie-r", "view"},
		{"dad", "movie-r", "view"},
		{"bobby", "family-medical-records", "read"},
		{"mom", "family-medical-records", "read"},
	}
	for _, r := range requests {
		d, err := hh.Decide(r.subject, r.object, r.tx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s %-5s %-24s -> %s\n", r.subject, r.tx, r.object, d.Effect)
	}

	// Everything above went through the tamper-evident event log.
	if err := hh.Log.Verify(); err != nil {
		log.Fatalf("trusted log broken: %v", err)
	}
	fmt.Printf("\ntrusted event log: %d entries, MAC chain verified\n", hh.Log.Len())
}
