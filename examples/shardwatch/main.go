// Command shardwatch demonstrates (and smoke-tests) the SDK's live
// shard-map convergence: it bootstraps a shard-aware embedded client
// from a routing tier, prints the installed map version, and — riding
// the router's /v1/shard/map/watch long-poll — blocks until the map
// reaches a target version, as happens when an online rebalance
// commits. With -subjects it then decides each one through the
// embedded client, proving every subject is still decidable under the
// new map, wherever it migrated.
//
//	grbacd -addr :8120 -route 'a=http://localhost:8125,b=http://localhost:8126' -data-dir /tmp/router &
//	go run ./examples/shardwatch -router http://127.0.0.1:8120 -want-version 2 &
//	grbacctl -server http://127.0.0.1:8120 rebalance add -id c -addr http://localhost:8127
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	grbac "github.com/aware-home/grbac"
	"github.com/aware-home/grbac/sdk"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shardwatch: ")
	router := flag.String("router", "http://127.0.0.1:8120", "routing-tier base URL")
	wantVersion := flag.Uint64("want-version", 0, "block until the installed shard map reaches this version (0 = just print the bootstrap map)")
	timeout := flag.Duration("timeout", time.Minute, "give up waiting for -want-version after this long")
	subjects := flag.String("subjects", "", "comma-separated subjects to decide after convergence (tv/use/weekday-free-time against the stock policy)")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	c, err := sdk.New(ctx, *router, sdk.WithShardRouting(""))
	cancel()
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	m := c.ShardMap()
	fmt.Printf("shardwatch: bootstrap map v%d (%d shards)\n", m.Version(), m.Len())

	if *wantVersion > 0 {
		deadline := time.Now().Add(*timeout)
		for c.ShardMap().Version() < *wantVersion {
			if time.Now().After(deadline) {
				log.Fatalf("map still v%d after %v, want v%d — watch never converged",
					c.ShardMap().Version(), *timeout, *wantVersion)
			}
			time.Sleep(20 * time.Millisecond)
		}
		m = c.ShardMap()
		fmt.Printf("shardwatch: converged map v%d (%d shards)\n", m.Version(), m.Len())
	}

	if *subjects != "" {
		subs := strings.Split(*subjects, ",")
		dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer dcancel()
		for _, sub := range subs {
			d, err := c.Decide(dctx, grbac.Request{
				Subject: grbac.SubjectID(sub), Object: "tv", Transaction: "use",
				Environment: []grbac.RoleID{"weekday-free-time"},
			})
			if err != nil || !d.Allowed {
				log.Printf("decide %s (owner %s): allowed=%v err=%v",
					sub, m.Owner(sub).ID, d.Allowed, err)
				os.Exit(1)
			}
		}
		fmt.Printf("shardwatch: %d subjects decidable under map v%d\n", len(subs), m.Version())
	}
}
