// Command elderlycare models the paper's §2 aging-in-place application:
// an elderly resident's home shares sensor data with remote relatives and
// a care specialist. It demonstrates three GRBAC features working together:
//
//   - object roles separate routine wellness data from private medical
//     detail;
//   - confidence thresholds gate the camera exactly as §3 prescribes
//     (strong auth streams video, weak auth sees a still);
//   - an audit trail answers "who looked at grandma's data this week?".
package main

import (
	"fmt"
	"log"
	"time"

	grbac "github.com/aware-home/grbac"
	"github.com/aware-home/grbac/internal/audit"
)

const carePolicy = `
subject role caregiver;
subject role relative extends caregiver;
subject role care-specialist extends caregiver;

object role wellness-data;
object role medical-detail;
object role cameras;

env role anytime when time "always";
env role care-hours when time "daily 08:00-20:00";

subject daughter is relative;
subject nurse is care-specialist;

object activity-summary is wellness-data;
object medication-log is medical-detail;
object living-room-camera is cameras;

transaction read;
transaction view-stream;
transaction view-still;

# Everyone in the care circle sees the wellness summary.
grant caregiver read wellness-data when anytime;
# Only the professional sees medical detail, and only during care hours.
grant care-specialist read medical-detail when care-hours;
# Camera: strong authentication streams, weak sees a still (paper, section 3).
grant caregiver view-stream cameras when anytime with confidence >= 0.9;
grant caregiver view-still cameras when anytime with confidence >= 0.6;
`

func main() {
	sys, engine, err := grbac.BuildPolicy(carePolicy)
	if err != nil {
		log.Fatal(err)
	}
	trail := audit.NewLogger()
	audited := audit.Wrap(sys, trail)

	now := time.Date(2000, 1, 17, 10, 0, 0, 0, time.UTC)
	late := time.Date(2000, 1, 17, 22, 30, 0, 0, time.UTC)

	decide := func(at time.Time, sub grbac.SubjectID, tx grbac.TransactionID,
		obj grbac.ObjectID, creds grbac.CredentialSet) {
		d, err := audited.Decide(grbac.Request{
			Subject: sub, Object: obj, Transaction: tx,
			Credentials: creds,
			Environment: engine.ActiveRolesAt(at, sub),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s %-9s %-12s %-19s -> %s\n",
			at.Format("15:04"), sub, tx, obj, d.Effect)
	}

	fmt.Println("Daily care checks (10:00 a.m.):")
	decide(now, "daughter", "read", "activity-summary", nil)
	decide(now, "nurse", "read", "activity-summary", nil)
	decide(now, "daughter", "read", "medication-log", nil) // relatives: no medical detail
	decide(now, "nurse", "read", "medication-log", nil)

	fmt.Println("\nAfter hours (10:30 p.m.): even the nurse loses medical detail")
	decide(late, "nurse", "read", "medication-log", nil)

	fmt.Println("\nCamera, authenticated by password (1.0) vs caller-ID (0.7):")
	strong := grbac.CredentialSet{grbac.IdentityCredential("daughter", 1.0, "password")}
	weak := grbac.CredentialSet{grbac.IdentityCredential("daughter", 0.7, "caller-id")}
	decide(now, "daughter", "view-stream", "living-room-camera", strong)
	decide(now, "daughter", "view-stream", "living-room-camera", weak)
	decide(now, "daughter", "view-still", "living-room-camera", weak)

	fmt.Println("\nAudit trail (who touched grandma's data):")
	fmt.Print(audit.Render(trail.Records()))
	stats := trail.Stats()
	fmt.Printf("totals: %d requests, %d permitted, %d denied\n",
		stats.Total, stats.Permits, stats.Denies)
}
