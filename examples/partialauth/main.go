// Command partialauth reproduces the paper's §5.2 walkthrough exactly:
// Alice (11 years old, 94 pounds) approaches the television after dinner.
// The Smart Floor identifies her as Alice with only 75% confidence — below
// the household's 90% policy threshold — but authenticates her into the
// Child role with 98% confidence, and the GRBAC policy grants the TV
// through the role path.
package main

import (
	"fmt"
	"log"
	"time"

	grbac "github.com/aware-home/grbac"
)

func main() {
	// Monday 7:30 p.m.: inside weekday free time.
	at := time.Date(2000, 1, 17, 19, 30, 0, 0, time.UTC)
	hh, err := grbac.NewHousehold(at)
	if err != nil {
		log.Fatal(err)
	}
	// "The security policy requires a person to be identified with 90%
	// accuracy before the system will grant rights to that person."
	if err := hh.System.SetMinConfidence(0.90); err != nil {
		log.Fatal(err)
	}

	// Alice steps on the Smart Floor: one 94-pound reading.
	obs := hh.Floor.Sense(94, at)
	fmt.Println("Smart Floor observations for a 94 lb reading:")
	for _, o := range obs {
		fmt.Printf("  %s\n", o)
	}
	if err := hh.Auth.Record(obs...); err != nil {
		log.Fatal(err)
	}

	creds := hh.Auth.Credentials(at)
	fmt.Println("\nfused credentials presented with the request:")
	for _, c := range creds {
		target := string(c.Subject)
		if c.Role != "" {
			target = "role " + string(c.Role)
		}
		fmt.Printf("  %-12s confidence %.2f (%s)\n", target, c.Confidence, c.Source)
	}

	// Alice pushes the TV power button.
	d, err := hh.DecideWithCredentials("alice", "tv", "use")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nalice uses tv (threshold 0.90) -> %s\n", d.Effect)
	fmt.Print(d.Explain())

	// Contrast: with identity evidence alone (75%), the same request is
	// denied — this is what a purely identity-based system would do.
	d2, err := hh.System.Decide(grbac.Request{
		Subject:     "alice",
		Object:      "tv",
		Transaction: "use",
		Credentials: grbac.CredentialSet{
			grbac.IdentityCredential("alice", 0.75, "smart-floor"),
		},
		Environment: hh.Engine.ActiveRolesAt(at, "alice"),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nidentity-only evidence (0.75 < 0.90) -> %s (%s)\n", d2.Effect, d2.Reason)
}
