// Command community demonstrates the paper's "connected community" (§1):
// the home's GRBAC engine runs as a networked policy decision point, and
// applications elsewhere — a neighbor's videophone client, a grandparent's
// browser, the homeowner's own admin UI — mediate and administer over
// HTTP. The example starts an in-process PDP with administration enabled,
// builds a small neighborhood policy remotely, and exercises it from the
// "outside".
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	grbac "github.com/aware-home/grbac"
	"github.com/aware-home/grbac/internal/pdp"
)

func main() {
	// The home's decision point (in-process for the example; cmd/grbacd
	// serves the same API on a real socket with -admin).
	sys := grbac.NewSystem()
	server := httptest.NewServer(pdp.NewServer(sys, pdp.WithAdmin()))
	defer server.Close()
	client := pdp.NewClient(server.URL, server.Client())
	ctx := context.Background()
	fmt.Printf("home PDP listening at %s\n\n", server.URL)

	// The homeowner's admin app builds the policy over the wire: family
	// photos are shared with the neighbors, home movies only with family.
	adminSteps := []struct {
		what string
		err  error
	}{
		{"role family", client.CreateRole(ctx, pdp.RoleRequest{ID: "family", Kind: "subject"})},
		{"role neighbor", client.CreateRole(ctx, pdp.RoleRequest{ID: "neighbor", Kind: "subject"})},
		{"role shared-albums", client.CreateRole(ctx, pdp.RoleRequest{ID: "shared-albums", Kind: "object"})},
		{"role private-albums", client.CreateRole(ctx, pdp.RoleRequest{ID: "private-albums", Kind: "object"})},
		{"role evenings", client.CreateRole(ctx, pdp.RoleRequest{ID: "evenings", Kind: "environment"})},
		{"subject grandma", client.UpsertSubject(ctx, pdp.BindingRequest{ID: "grandma", Roles: []string{"family"}})},
		{"subject ned", client.UpsertSubject(ctx, pdp.BindingRequest{ID: "ned", Roles: []string{"neighbor"}})},
		{"object bbq-photos", client.UpsertObject(ctx, pdp.BindingRequest{ID: "bbq-photos", Roles: []string{"shared-albums"}})},
		{"object home-movies", client.UpsertObject(ctx, pdp.BindingRequest{ID: "home-movies", Roles: []string{"private-albums"}})},
		{"transaction view", client.CreateTransaction(ctx, pdp.TransactionRequest{ID: "view"})},
		{"grant neighbors", client.GrantPermission(ctx, pdp.PermissionRequest{
			Subject: "neighbor", Object: "shared-albums", Environment: "evenings",
			Transaction: "view", Effect: "permit"})},
		{"grant family", client.GrantPermission(ctx, pdp.PermissionRequest{
			Subject: "family", Object: "shared-albums", Environment: "*environment*",
			Transaction: "view", Effect: "permit"})},
		{"grant family private", client.GrantPermission(ctx, pdp.PermissionRequest{
			Subject: "family", Object: "private-albums", Environment: "*environment*",
			Transaction: "view", Effect: "permit"})},
	}
	for _, s := range adminSteps {
		if s.err != nil {
			log.Fatalf("%s: %v", s.what, s.err)
		}
	}
	fmt.Println("homeowner pushed the neighborhood policy over the admin API")

	// Remote applications mediate.
	check := func(subject, object string, env []string) {
		ok, err := client.Check(ctx, pdp.DecideRequest{
			Subject: subject, Object: object, Transaction: "view", Environment: env,
		})
		if err != nil {
			log.Fatal(err)
		}
		outcome := "deny"
		if ok {
			outcome = "permit"
		}
		fmt.Printf("  %-8s views %-12s env=%-10v -> %s\n", subject, object, env, outcome)
	}
	fmt.Println("\nremote mediation:")
	check("ned", "bbq-photos", []string{"evenings"})
	check("ned", "bbq-photos", []string{})
	check("ned", "home-movies", []string{"evenings"})
	check("grandma", "home-movies", []string{})
	check("grandma", "bbq-photos", []string{})

	// The homeowner reviews who can see what, also remotely.
	who, err := client.WhoCan(ctx, "view", "bbq-photos", []string{"evenings"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreview: who can view bbq-photos in the evening? %v\n", who)
	what, err := client.WhatCan(ctx, "ned", []string{"evenings"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("review: ned's evening entitlements: %v\n", what)
}
