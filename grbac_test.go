package grbac_test

import (
	"errors"
	"testing"
	"time"

	grbac "github.com/aware-home/grbac"
)

// TestQuickstart exercises the package-documentation example verbatim.
func TestQuickstart(t *testing.T) {
	sys := grbac.NewSystem()
	steps := []error{
		sys.AddRole(grbac.Role{ID: "child", Kind: grbac.SubjectRole}),
		sys.AddRole(grbac.Role{ID: "entertainment-devices", Kind: grbac.ObjectRole}),
		sys.AddRole(grbac.Role{ID: "weekday-free-time", Kind: grbac.EnvironmentRole}),
		sys.AddSubject("alice"),
		sys.AssignSubjectRole("alice", "child"),
		sys.AddObject("tv"),
		sys.AssignObjectRole("tv", "entertainment-devices"),
		sys.AddTransaction(grbac.SimpleTransaction("use")),
		sys.Grant(grbac.Permission{
			Subject:     "child",
			Object:      "entertainment-devices",
			Environment: "weekday-free-time",
			Transaction: "use",
			Effect:      grbac.Permit,
		}),
	}
	for i, err := range steps {
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	d, err := sys.Decide(grbac.Request{
		Subject: "alice", Object: "tv", Transaction: "use",
		Environment: []grbac.RoleID{"weekday-free-time"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Allowed {
		t.Fatal("quickstart denied")
	}
}

func TestPolicyFacade(t *testing.T) {
	sys, engine, err := grbac.BuildPolicy(`
subject role child;
object role toys;
env role playtime when time "daily 15:00-18:00";
subject bobby is child;
object blocks is toys;
transaction use;
grant child use toys when playtime;
`)
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2000, 1, 17, 16, 0, 0, 0, time.UTC)
	ok, err := sys.CheckAccess(grbac.Request{
		Subject: "bobby", Object: "blocks", Transaction: "use",
		Environment: engine.ActiveRolesAt(at, "bobby"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("playtime access denied")
	}
}

func TestBuildPolicyWithStoreFacade(t *testing.T) {
	store := grbac.NewEnvironmentStore()
	sys, engine, err := grbac.BuildPolicyWithStore(`
subject role guest;
object role doors;
env role vouched when attr host.present == true;
subject visitor is guest;
object front-door is doors;
transaction open;
grant guest open doors when vouched;
`, store)
	if err != nil {
		t.Fatal(err)
	}
	check := func(want bool) {
		t.Helper()
		ok, err := sys.CheckAccess(grbac.Request{
			Subject: "visitor", Object: "front-door", Transaction: "open",
			Environment: engine.ActiveRolesFor("visitor"),
		})
		if err != nil {
			t.Fatal(err)
		}
		if ok != want {
			t.Fatalf("allowed = %v, want %v", ok, want)
		}
	}
	check(false)
	store.Set("host.present", grbac.EnvBool(true))
	check(true)
	store.Set("host.present", grbac.EnvBool(false))
	check(false)
	// The other helpers build usable values too.
	store.Set("label", grbac.EnvString("x"))
	store.Set("load", grbac.EnvNumber(0.5))
	if v, ok := store.Get("load"); !ok || v.Num != 0.5 {
		t.Fatal("EnvNumber round trip failed")
	}
}

func TestCompilePolicyError(t *testing.T) {
	if _, err := grbac.CompilePolicy("nonsense;"); err == nil {
		t.Fatal("bad policy compiled")
	}
}

func TestParsePeriodFacade(t *testing.T) {
	p, err := grbac.ParsePeriod("weekly mon-fri and daily 19:00-22:00")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Contains(time.Date(2000, 1, 17, 20, 0, 0, 0, time.UTC)) {
		t.Fatal("Monday 8pm excluded")
	}
	if p.Contains(time.Date(2000, 1, 22, 20, 0, 0, 0, time.UTC)) {
		t.Fatal("Saturday included")
	}
}

func TestHouseholdFacade(t *testing.T) {
	hh, err := grbac.NewHousehold(time.Date(2000, 1, 17, 20, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	d, err := hh.Decide("alice", "tv", "use")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Allowed {
		t.Fatal("household facade denied §5.1 scenario")
	}
}

func TestSentinelErrorsExported(t *testing.T) {
	sys := grbac.NewSystem()
	err := sys.AssignSubjectRole("ghost", "r")
	if !errors.Is(err, grbac.ErrNotFound) {
		t.Fatalf("error = %v, want grbac.ErrNotFound", err)
	}
}

func TestCredentialHelpers(t *testing.T) {
	id := grbac.IdentityCredential("alice", 0.75, "smart-floor")
	role := grbac.RoleCredential("child", 0.98, "smart-floor")
	if id.Subject != "alice" || role.Role != "child" {
		t.Fatal("credential helpers wrong")
	}
	if err := (grbac.CredentialSet{id, role}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConflictStrategyFacade(t *testing.T) {
	sys := grbac.NewSystem(grbac.WithConflictStrategy(grbac.PermitOverrides{}))
	if err := sys.AddRole(grbac.Role{ID: "r", Kind: grbac.SubjectRole}); err != nil {
		t.Fatal(err)
	}
	sys.SetConflictStrategy(grbac.MostSpecificWins{})
	sys.SetConflictStrategy(grbac.DenyOverrides{})
}

func TestDefaultHomePolicyCompiles(t *testing.T) {
	if _, err := grbac.CompilePolicy(grbac.DefaultHomePolicy); err != nil {
		t.Fatalf("DefaultHomePolicy: %v", err)
	}
}
