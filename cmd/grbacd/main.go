// Command grbacd serves a GRBAC policy decision point over HTTP.
//
// The policy comes from either a policy-language source file (-policy) or
// a JSON snapshot (-snapshot); with neither, the built-in Aware Home
// policy is served, which is convenient for trying the API:
//
//	grbacd -addr :8125 &
//	curl -s localhost:8125/v1/check -d \
//	  '{"subject":"alice","object":"tv","transaction":"use",
//	    "environment":["weekday-free-time"]}'
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"time"

	grbac "github.com/aware-home/grbac"
	"github.com/aware-home/grbac/internal/audit"
	"github.com/aware-home/grbac/internal/core"
	"github.com/aware-home/grbac/internal/pdp"
	"github.com/aware-home/grbac/internal/store"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("grbacd: ")
	addr := flag.String("addr", ":8125", "listen address")
	policyPath := flag.String("policy", "", "policy-language source file")
	snapshotPath := flag.String("snapshot", "", "JSON policy snapshot file")
	threshold := flag.Float64("min-confidence", 0, "system-wide authentication threshold override (0 = keep policy value)")
	admin := flag.Bool("admin", false, "enable the policy administration and session endpoints")
	flag.Parse()

	sys, err := loadSystem(*policyPath, *snapshotPath)
	if err != nil {
		log.Fatal(err)
	}
	if *threshold > 0 {
		if err := sys.SetMinConfidence(*threshold); err != nil {
			log.Fatal(err)
		}
	}

	trail := audit.NewLogger()
	opts := []pdp.ServerOption{pdp.WithAuditLogger(trail)}
	if *admin {
		opts = append(opts, pdp.WithAdmin())
		log.Print("administration endpoints ENABLED")
	}
	server := pdp.NewServer(sys, opts...)
	log.Printf("serving GRBAC PDP on %s (%d permissions, %d subjects)",
		*addr, len(sys.Permissions()), len(sys.Subjects()))
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           server,
		ReadHeaderTimeout: 5 * time.Second,
	}
	if err := httpServer.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}

func loadSystem(policyPath, snapshotPath string) (*core.System, error) {
	switch {
	case policyPath != "" && snapshotPath != "":
		log.Fatal("-policy and -snapshot are mutually exclusive")
		return nil, nil
	case snapshotPath != "":
		sys, snap, err := store.Load(snapshotPath)
		if err != nil {
			return nil, err
		}
		log.Printf("loaded snapshot %s (saved %s)", snapshotPath, snap.SavedAt.Format(time.RFC3339))
		return sys, nil
	case policyPath != "":
		src, err := os.ReadFile(policyPath)
		if err != nil {
			return nil, err
		}
		sys, engine, err := grbac.BuildPolicy(string(src))
		if err != nil {
			return nil, err
		}
		sys.SetEnvironmentSource(engine)
		log.Printf("compiled policy %s", policyPath)
		return sys, nil
	default:
		sys, engine, err := grbac.BuildPolicy(grbac.DefaultHomePolicy)
		if err != nil {
			return nil, err
		}
		sys.SetEnvironmentSource(engine)
		log.Print("serving the built-in Aware Home policy")
		return sys, nil
	}
}
