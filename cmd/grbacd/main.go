// Command grbacd serves a GRBAC policy decision point over HTTP.
//
// The policy comes from either a policy-language source file (-policy) or
// a JSON snapshot (-snapshot); with neither, the built-in Aware Home
// policy is served, which is convenient for trying the API:
//
//	grbacd -addr :8125 &
//	curl -s localhost:8125/v1/check -d \
//	  '{"subject":"alice","object":"tv","transaction":"use",
//	    "environment":["weekday-free-time"]}'
//
// Every grbacd exposes the replication feed (/v1/replica/*), so any node
// can act as the primary of a cluster. Started with -follow, grbacd is
// instead a read-only follower: it pulls the primary's snapshot, serves
// Decide traffic from the replicated policy at local speed, long-polls
// for changes, and redirects mutations to the primary:
//
//	grbacd -addr :8125 -admin &                         # primary
//	grbacd -addr :8126 -follow http://localhost:8125 &  # follower
//
// Past -max-staleness without primary contact the follower keeps serving
// (decisions marked "stale": true) while /v1/healthz degrades to 503.
//
// Started with -route, grbacd is instead a routing tier over a sharded
// cluster: subjects are partitioned across the listed shards by
// consistent hash, each request is forwarded to the shard owning its
// subject, and cross-subject queries scatter-gather across all shards:
//
//	grbacd -addr :8125 -admin &                              # shard a
//	grbacd -addr :8126 -admin &                              # shard b
//	grbacd -addr :8120 -route 'a=http://localhost:8125,b=http://localhost:8126' &
//
// With -data-dir the primary's policy is durable: every mutation is
// written to a write-ahead log before it is acknowledged, periodic
// checkpoint snapshots bound replay time, and a restart recovers the
// exact pre-crash policy, generation, and replication epoch — so
// followers catch up through a delta fetch instead of a full resync:
//
//	grbacd -addr :8125 -admin -data-dir /var/lib/grbacd &
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	grbac "github.com/aware-home/grbac"
	"github.com/aware-home/grbac/internal/audit"
	"github.com/aware-home/grbac/internal/bundle"
	"github.com/aware-home/grbac/internal/core"
	"github.com/aware-home/grbac/internal/declog"
	"github.com/aware-home/grbac/internal/event"
	"github.com/aware-home/grbac/internal/faults"
	"github.com/aware-home/grbac/internal/obs"
	"github.com/aware-home/grbac/internal/pdp"
	"github.com/aware-home/grbac/internal/replica"
	"github.com/aware-home/grbac/internal/shard"
	"github.com/aware-home/grbac/internal/store"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("grbacd: ")
	addr := flag.String("addr", ":8125", "listen address")
	policyPath := flag.String("policy", "", "policy-language source file")
	snapshotPath := flag.String("snapshot", "", "JSON policy snapshot file")
	threshold := flag.Float64("min-confidence", 0, "system-wide authentication threshold override (0 = keep policy value)")
	admin := flag.Bool("admin", false, "enable the policy administration and session endpoints")
	dataDir := flag.String("data-dir", "", "durable policy store directory (WAL + checkpoints): mutations survive restarts and followers resume via delta sync")
	walCheckpointEvery := flag.Int("wal-checkpoint-every", store.DefaultCheckpointEvery, "WAL records between checkpoint snapshots in -data-dir")
	walGroupCommit := flag.Bool("wal-group-commit", false, "coalesce concurrent WAL fsyncs in -data-dir: one disk flush acknowledges every mutation appended before it (same durability, far fewer fsyncs under bursts)")
	route := flag.String("route", "", "router mode: comma-separated shard list 'id=url,id=url' (or bare URLs for auto IDs); this node forwards requests to the shard owning each subject instead of deciding itself")
	routeFanout := flag.Int("route-fanout", pdp.DefaultRouterFanout, "router mode: max concurrent per-shard calls in scatter-gather fan-outs")
	shardTimeout := flag.Duration("shard-timeout", pdp.DefaultShardTimeout, "router mode: per-shard call deadline — a down shard costs one deadline, not a hang")
	vnodes := flag.Int("vnodes", shard.DefaultVNodes, "router mode: virtual nodes per shard on the consistent-hash ring")
	probeInterval := flag.Duration("shard-probe-interval", 0, "router mode: background shard health-probe interval feeding /v1/healthz and grbac_shard_health (0 probes inline on /v1/healthz only)")
	hedgeQuantile := flag.Float64("hedge-quantile", 0, "router mode: hedge scatter reads that outlive this latency quantile of the shard's recent calls, e.g. 0.95 (0 disables hedging)")
	follow := flag.String("follow", "", "primary PDP base URL to replicate from (follower mode: read-only, policy comes from the primary)")
	maxStaleness := flag.Duration("max-staleness", 30*time.Second, "follower mode: degrade health and mark decisions stale after this long without primary contact (0 disables)")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second, "how long to let in-flight requests drain on SIGINT/SIGTERM")
	maxInflight := flag.Int("max-inflight", 0, "max concurrent decision requests; overflow waits -inflight-wait then sheds with 429 + Retry-After (0 disables admission control)")
	inflightWait := flag.Duration("inflight-wait", 50*time.Millisecond, "how long an over-limit decision request may wait for an admission slot before shedding")
	faultSpec := flag.String("faults", "", "chaos drills: fault-injection spec, e.g. 'pdp.decide:delay=50ms,prob=0.5;replica.watch:error=dropped,every=3'")
	faultSeed := flag.Int64("faults-seed", 1, "seed for the fault plan's probability draws, for reproducible chaos runs")
	auditCapacity := flag.Int("audit-capacity", 10000, "audit-trail ring capacity; older records are evicted (and counted in grbac_audit_evicted_total) beyond it")
	declogSink := flag.String("declog", "", "decision-log export sink: an http(s):// collector URL or a directory for rotating gzip JSONL chunks (empty disables export)")
	declogBuffer := flag.Int("declog-buffer", 0, "decision-log intake buffer in records; overflow is dropped and counted, never blocking Decide (0 = default)")
	declogFlush := flag.Duration("declog-flush", 0, "decision-log flush interval: a partial chunk is sealed and queued for upload after this much quiet time (0 = default 1s)")
	bundlePub := flag.String("bundle-pub", "", "trusted bundle public key file (hex ed25519): enables POST /v1/bundle, verified before activation")
	bundlePath := flag.String("bundle", "", "signed policy bundle to verify and activate at boot (requires -bundle-pub)")
	metricsOn := flag.Bool("metrics", true, "expose Prometheus metrics at GET /metrics")
	traceBuffer := flag.Int("trace-buffer", obs.DefaultTraceCapacity, "decision traces retained for GET /v1/traces (0 disables tracing)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (opt-in; CPU profiles longer than the write timeout are truncated)")
	flag.Parse()

	if *faultSpec != "" {
		rules, err := faults.ParseRules(*faultSpec)
		if err != nil {
			log.Fatal(err)
		}
		faults.Activate(faults.NewPlan(*faultSeed, rules...))
		log.Printf("FAULT INJECTION ACTIVE (seed %d): %s", *faultSeed, *faultSpec)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The bundle trust root is shared by every mode: a primary, follower,
	// or router started with -bundle-pub accepts signed policy bundles at
	// POST /v1/bundle and rejects unsigned, tampered, or stale ones.
	var verifier *bundle.Verifier
	if *bundlePub != "" {
		pub, err := bundle.LoadPublicKey(*bundlePub)
		if err != nil {
			log.Fatal(err)
		}
		verifier = bundle.NewVerifier(pub)
		log.Printf("bundle verification armed (trusted key %s)", bundle.KeyID(pub))
	}
	if *bundlePath != "" && verifier == nil {
		log.Fatal("-bundle requires -bundle-pub: an unverifiable bundle is never activated")
	}

	if *route != "" {
		if *policyPath != "" || *snapshotPath != "" || *admin || *follow != "" {
			log.Fatal("-route is exclusive with -policy, -snapshot, -admin, and -follow: a router holds no policy of its own")
		}
		if *bundlePath != "" {
			log.Fatal("-bundle is exclusive with -route: a router activates no policy at boot; push bundles to POST /v1/bundle instead")
		}
		m, err := parseShardList(*route, *vnodes)
		if err != nil {
			log.Fatal(err)
		}
		// With -data-dir the router is rebalance-capable: the last
		// committed shard map persists across restarts (and overrides the
		// boot flag when newer), and an interrupted rebalance resumes
		// from its journal.
		var mapPath, journalPath string
		if *dataDir != "" {
			if err := os.MkdirAll(*dataDir, 0o755); err != nil {
				log.Fatal(err)
			}
			mapPath = filepath.Join(*dataDir, "shardmap.json")
			journalPath = filepath.Join(*dataDir, "rebalance.journal")
			persisted, err := shard.LoadMap(mapPath)
			if err != nil {
				log.Fatal(err)
			}
			if persisted != nil && persisted.Version() > m.Version() {
				log.Printf("persisted shard map v%d (%d shards) overrides -route list", persisted.Version(), persisted.Len())
				m = persisted
			}
		}
		routerOpts := []pdp.RouterOption{
			pdp.WithRouterFanout(*routeFanout),
			pdp.WithShardTimeout(*shardTimeout),
		}
		if *probeInterval > 0 {
			routerOpts = append(routerOpts, pdp.WithHealthProbes(*probeInterval))
			log.Printf("shard health probes every %v", *probeInterval)
		}
		if *hedgeQuantile > 0 {
			routerOpts = append(routerOpts, pdp.WithHedgedScatter(*hedgeQuantile))
			log.Printf("scatter hedging at p%.0f", *hedgeQuantile*100)
		}
		if verifier != nil {
			routerOpts = append(routerOpts, pdp.WithRouterBundleVerifier(verifier))
		}
		if *metricsOn {
			routerOpts = append(routerOpts, pdp.WithRouterMetrics(obs.NewRegistry()))
		}
		rt, err := pdp.NewRouter(m, routerOpts...)
		if err != nil {
			log.Fatal(err)
		}
		handler := http.Handler(rt)
		if *dataDir != "" {
			coord := shard.NewCoordinator(journalPath,
				func(info shard.Info) shard.NodeClient { return pdp.NewMigrationNode(info.Addr) },
				func(_ context.Context, nm *shard.Map) error {
					// Re-commits during resume may carry the already-active
					// version; that is convergence, not an error.
					if err := rt.SetMap(nm); err != nil && !errors.Is(err, pdp.ErrStaleShardMap) {
						return err
					}
					return shard.SaveMap(mapPath, nm)
				}, log.Printf)
			go func() {
				// Resume in the background so routing starts immediately:
				// mid-migration subjects keep deciding via the old owners'
				// forwarding until the resumed run commits.
				if resumed, err := coord.Resume(context.Background()); err != nil {
					log.Printf("rebalance resume: %v", err)
				} else if resumed {
					log.Printf("resumed interrupted rebalance: shard map now v%d", rt.Map().Version())
				}
			}()
			reb := pdp.NewRebalanceHandler(rt, coord, log.Default())
			outer := http.NewServeMux()
			outer.Handle(pdp.ShardRebalancePath, reb)
			outer.Handle(pdp.ShardRebalanceStatusPath, reb)
			outer.Handle("/", rt)
			handler = outer
			log.Printf("rebalance API enabled (journal %s)", journalPath)
		}
		for _, s := range rt.Map().Shards() {
			log.Printf("shard %s -> %s", s.ID, s.Addr)
		}
		log.Printf("serving GRBAC routing tier on %s (%d shards, %d vnodes, fan-out %d, shard timeout %v)",
			*addr, rt.Map().Len(), rt.Map().VNodes(), *routeFanout, *shardTimeout)
		serve(ctx, stop, *addr, handler, *shutdownGrace, rt.Close)
		return
	}

	var sys *core.System
	var dur *store.Durable
	var serverOpts []pdp.ServerOption

	// The audit trail is a bounded ring; past -audit-capacity the oldest
	// records are evicted and counted. With -declog every record is also
	// handed (without ever blocking Decide) to the export pipeline, which
	// ships gzip JSONL chunks to the sink and sheds with a counter when
	// the sink cannot keep up.
	var exporter *declog.Exporter
	auditOpts := []audit.LoggerOption{audit.WithCapacity(*auditCapacity)}
	if *declogSink != "" {
		sink, err := declog.ParseSink(*declogSink)
		if err != nil {
			log.Fatal(err)
		}
		var dlOpts []declog.Option
		if *declogBuffer > 0 {
			dlOpts = append(dlOpts, declog.WithBufferSize(*declogBuffer))
		}
		if *declogFlush > 0 {
			dlOpts = append(dlOpts, declog.WithFlushInterval(*declogFlush))
		}
		exporter = declog.New(sink, dlOpts...)
		auditOpts = append(auditOpts, audit.WithExportHook(exporter.Offer))
		serverOpts = append(serverOpts, pdp.WithDecisionLog(exporter))
		log.Printf("decision-log export to %s", *declogSink)
	}
	trail := audit.NewLogger(auditOpts...)
	serverOpts = append(serverOpts, pdp.WithAuditLogger(trail))
	if verifier != nil {
		serverOpts = append(serverOpts, pdp.WithBundleVerifier(verifier))
	}

	var reg *obs.Registry
	if *metricsOn {
		reg = obs.NewRegistry()
		serverOpts = append(serverOpts, pdp.WithMetrics(reg))
	}
	if *traceBuffer > 0 {
		serverOpts = append(serverOpts, pdp.WithTracer(obs.NewTracer(*traceBuffer)))
	}

	if *follow != "" {
		if *policyPath != "" || *snapshotPath != "" || *admin || *dataDir != "" {
			log.Fatal("-follow is exclusive with -policy, -snapshot, -admin, and -data-dir: a follower's policy comes from its primary")
		}
		if *bundlePath != "" {
			log.Fatal("-bundle is exclusive with -follow: a follower's boot policy comes from its primary (push bundles to POST /v1/bundle instead)")
		}
		sys = core.NewSystem()
		follower := replica.NewFollower(sys, *follow,
			replica.WithMaxStaleness(*maxStaleness))
		go func() {
			_ = follower.Run(ctx)
		}()
		serverOpts = append(serverOpts, pdp.WithFollower(follower))
		log.Printf("following primary %s (max staleness %v)", *follow, *maxStaleness)
	} else {
		var engine *grbac.EnvironmentEngine
		var err error
		sys, engine, err = loadSystem(*policyPath, *snapshotPath)
		if err != nil {
			log.Fatal(err)
		}
		if *dataDir != "" {
			// The loaded policy only seeds an empty data dir; once the
			// store holds state, the recovered policy wins and -policy /
			// -snapshot are ignored for content (still fine as defaults).
			seedState, _ := sys.Snapshot()
			storeOpts := []store.DurableOption{
				store.WithCheckpointEvery(*walCheckpointEvery),
				store.WithSeedState(&seedState),
			}
			if *walGroupCommit {
				storeOpts = append(storeOpts, store.WithGroupCommit())
				log.Print("WAL group commit ENABLED")
			}
			dur, err = store.Open(*dataDir, storeOpts...)
			if err != nil {
				log.Fatal(err)
			}
			sys = dur.System()
			if engine != nil {
				// Re-attach the environment engine to the recovered system:
				// environment definitions are live Go values the snapshot
				// cannot carry.
				sys.SetEnvironmentSource(engine)
			}
			st := dur.Stats()
			log.Printf("durable store %s: epoch %s generation %d (replayed %d WAL records on top of checkpoint gen %d)",
				*dataDir, st.Epoch, st.Generation, st.Replay.Records, st.CheckpointGeneration)
			if reg != nil {
				dur.RegisterMetrics(reg)
			}
		}
		if engine != nil && reg != nil {
			// Wire the event bus so environment role transitions are
			// published and counted, and export the bus and engine gauges
			// alongside the server's own metrics.
			bus := event.NewBus()
			engine.AttachBus(bus)
			bus.RegisterMetrics(reg)
			engine.RegisterMetrics(reg)
		}
		if *threshold > 0 {
			if err := sys.SetMinConfidence(*threshold); err != nil {
				log.Fatal(err)
			}
		}
		if *bundlePath != "" {
			raw, err := os.ReadFile(*bundlePath)
			if err != nil {
				log.Fatal(err)
			}
			b, err := verifier.Admit(raw)
			if err != nil {
				log.Fatalf("boot bundle %s rejected: %v", *bundlePath, err)
			}
			if err := sys.Replace(b.State); err != nil {
				log.Fatalf("boot bundle %s: %v", *bundlePath, err)
			}
			log.Printf("activated boot bundle %s (revision %d, key %s)",
				*bundlePath, b.Manifest.Revision, b.Manifest.KeyID)
		}
		if *admin {
			serverOpts = append(serverOpts, pdp.WithAdmin())
			log.Print("administration endpoints ENABLED")
		}
	}
	// Every node exposes the feed, so followers can chain off followers
	// and any node can be promoted to primary. A durable primary pins the
	// feed epoch to the store's persisted one and serves delta catch-up
	// from its WAL tail, so followers survive its restarts cheaply.
	var srcOpts []replica.SourceOption
	if dur != nil {
		srcOpts = append(srcOpts,
			replica.WithSourceEpoch(dur.Epoch()),
			replica.WithDeltaProvider(dur))
		serverOpts = append(serverOpts, pdp.WithDurableStore(dur))
	}
	serverOpts = append(serverOpts, pdp.WithReplicaSource(replica.NewSource(sys, srcOpts...)))
	if *maxInflight > 0 {
		serverOpts = append(serverOpts, pdp.WithMaxInflight(*maxInflight, *inflightWait))
		log.Printf("admission control: %d in flight, %v wait", *maxInflight, *inflightWait)
	}

	server := pdp.NewServer(sys, serverOpts...)
	handler := http.Handler(server)
	if *pprofOn {
		// pprof rides an outer mux so the PDP mux stays free of debug
		// routes when profiling is off (the default).
		outer := http.NewServeMux()
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		outer.Handle("/", server)
		handler = outer
		log.Print("pprof ENABLED at /debug/pprof/")
	}
	log.Printf("serving GRBAC PDP on %s (%d permissions, %d subjects)",
		*addr, len(sys.Permissions()), len(sys.Subjects()))
	serve(ctx, stop, *addr, handler, *shutdownGrace, func() {
		if exporter != nil {
			// Flush and upload what the pipeline holds (bounded by its
			// close timeout); anything still stuck is counted as dropped.
			exporter.Close()
		}
		if dur != nil {
			// Final checkpoint: the next boot replays nothing.
			if err := dur.Close(); err != nil {
				log.Printf("store close: %v", err)
			}
		}
	})
}

// serve runs the HTTP server until the context is cancelled, then drains
// in-flight requests and runs onDrain (when non-nil) before returning.
func serve(ctx context.Context, stop context.CancelFunc, addr string, handler http.Handler, grace time.Duration, onDrain func()) {
	httpServer := &http.Server{
		Addr:    addr,
		Handler: handler,
		// Defense against slow or stuck clients. The replication watch
		// handler outlives WriteTimeout by design: it extends its own
		// per-request write deadline (http.ResponseController) to cover
		// the long-poll window.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      15 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		errCh <- httpServer.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // restore default signal behavior: a second signal kills
		log.Printf("signal received, draining for up to %v", grace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		if err := httpServer.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
			os.Exit(1)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("serve: %v", err)
		}
		if onDrain != nil {
			onDrain()
		}
		log.Print("bye")
	}
}

// parseShardList parses the -route shard list: comma-separated entries,
// each "id=url" or a bare URL (auto-assigned IDs s0, s1, … by position —
// note that renaming or reordering auto-ID shards remaps subjects, so
// production clusters should pin explicit IDs).
func parseShardList(spec string, vnodes int) (*shard.Map, error) {
	var infos []shard.Info
	for i, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		if id, url, ok := strings.Cut(entry, "="); ok && !strings.Contains(id, "/") {
			infos = append(infos, shard.Info{ID: strings.TrimSpace(id), Addr: strings.TrimSpace(url)})
		} else {
			infos = append(infos, shard.Info{ID: fmt.Sprintf("s%d", i), Addr: entry})
		}
	}
	return shard.New(vnodes, infos...)
}

// loadSystem builds the system and, when the policy came from the policy
// language, the environment engine behind it (nil for snapshots, which
// carry no live environment definitions).
func loadSystem(policyPath, snapshotPath string) (*core.System, *grbac.EnvironmentEngine, error) {
	switch {
	case policyPath != "" && snapshotPath != "":
		log.Fatal("-policy and -snapshot are mutually exclusive")
		return nil, nil, nil
	case snapshotPath != "":
		sys, snap, err := store.Load(snapshotPath)
		if err != nil {
			return nil, nil, err
		}
		log.Printf("loaded snapshot %s (saved %s)", snapshotPath, snap.SavedAt.Format(time.RFC3339))
		return sys, nil, nil
	case policyPath != "":
		src, err := os.ReadFile(policyPath)
		if err != nil {
			return nil, nil, err
		}
		sys, engine, err := grbac.BuildPolicy(string(src))
		if err != nil {
			return nil, nil, err
		}
		sys.SetEnvironmentSource(engine)
		log.Printf("compiled policy %s", policyPath)
		return sys, engine, nil
	default:
		sys, engine, err := grbac.BuildPolicy(grbac.DefaultHomePolicy)
		if err != nil {
			return nil, nil, err
		}
		sys.SetEnvironmentSource(engine)
		log.Print("serving the built-in Aware Home policy")
		return sys, engine, nil
	}
}
