package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/aware-home/grbac/internal/core"
	"github.com/aware-home/grbac/internal/store"
)

func TestLoadSystemBuiltin(t *testing.T) {
	sys, engine, err := loadSystem("", "")
	if err != nil {
		t.Fatal(err)
	}
	if !sys.HasSubject("alice") || !sys.HasObject("tv") {
		t.Fatal("built-in Aware Home policy not loaded")
	}
	if engine == nil {
		t.Fatal("built-in policy must come with its environment engine")
	}
}

func TestLoadSystemPolicyFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.policy")
	src := `
subject role r;
object role o;
subject u is r;
object x is o;
transaction t;
grant r t o;
`
	if err := os.WriteFile(path, []byte(src), 0o600); err != nil {
		t.Fatal(err)
	}
	sys, engine, err := loadSystem(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if engine == nil {
		t.Fatal("compiled policy must come with its environment engine")
	}
	ok, err := sys.CheckAccess(core.Request{Subject: "u", Object: "x",
		Transaction: "t", Environment: []core.RoleID{}})
	if err != nil || !ok {
		t.Fatalf("policy file system = %v, %v", ok, err)
	}
}

func TestLoadSystemPolicyFileErrors(t *testing.T) {
	if _, _, err := loadSystem(filepath.Join(t.TempDir(), "missing.policy"), ""); err == nil {
		t.Fatal("missing policy file loaded")
	}
	bad := filepath.Join(t.TempDir(), "bad.policy")
	if err := os.WriteFile(bad, []byte("nonsense;"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadSystem(bad, ""); err == nil {
		t.Fatal("bad policy compiled")
	}
}

func TestLoadSystemSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	src := core.NewSystem()
	if err := src.AddSubject("u"); err != nil {
		t.Fatal(err)
	}
	if err := store.Save(path, src, time.Now()); err != nil {
		t.Fatal(err)
	}
	sys, engine, err := loadSystem("", path)
	if err != nil {
		t.Fatal(err)
	}
	if !sys.HasSubject("u") {
		t.Fatal("snapshot not restored")
	}
	if engine != nil {
		t.Fatal("snapshots carry no environment engine")
	}
	if _, _, err := loadSystem("", filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing snapshot loaded")
	}
}
