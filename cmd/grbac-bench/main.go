// Command grbac-bench runs the paper-reproduction experiment suite
// (DESIGN.md §4, E1–E15 and E17; E16 lives in internal/replica's
// benchmarks) and prints one report block per experiment. The output is
// what EXPERIMENTS.md records.
//
// Usage:
//
//	grbac-bench            # run everything
//	grbac-bench -run E4    # run one experiment
//	grbac-bench -list      # list the suite
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/aware-home/grbac/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("grbac-bench: ")
	runID := flag.String("run", "", "run a single experiment (E1..E22)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-45s %s\n", e.ID, e.Title, e.Source)
		}
		return
	}
	if *runID != "" {
		e, ok := experiments.Find(*runID)
		if !ok {
			log.Fatalf("unknown experiment %q (try -list)", *runID)
		}
		if err := experiments.RunOne(os.Stdout, e); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := experiments.RunAll(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
