// Command grbac-sim runs the Aware Home simulation: a generated activity
// trace (residents moving through the house, using devices) replayed
// against the standard household policy, with audit statistics and
// trusted-log verification at the end.
//
// Usage:
//
//	grbac-sim -events 5000 -seed 7
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	grbac "github.com/aware-home/grbac"
	"github.com/aware-home/grbac/internal/home"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("grbac-sim: ")
	events := flag.Int("events", 2000, "number of activity events to simulate (random mode)")
	seed := flag.Int64("seed", 1, "workload random seed")
	start := flag.String("start", "2000-01-17T07:00:00Z", "simulation start time (RFC3339)")
	routine := flag.Bool("routine", false, "simulate the household's daily routines instead of random activity")
	days := flag.Int("days", 5, "days to simulate in routine mode")
	flag.Parse()

	startAt, err := time.Parse(time.RFC3339, *start)
	if err != nil {
		log.Fatalf("bad -start: %v", err)
	}
	hh, err := grbac.NewHousehold(startAt)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(*seed))
	var stats home.ReplayStats
	if *routine {
		trace := home.GenerateRoutineWeek(rng, home.StandardRoutines(), startAt, *days, 6)
		fmt.Printf("simulating %d routine days (%d events, seed %d)\n", *days, len(trace), *seed)
		var hours [24]home.HourStats
		stats, hours, err = hh.ReplayByHour(trace)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replay: %s\n", stats)
		fmt.Println("\nhour  events  permits  rate")
		for h, hs := range hours {
			if hs.Events == 0 {
				continue
			}
			fmt.Printf("%02d:00 %6d  %7d  %4.0f%%\n",
				h, hs.Events, hs.Permits, 100*float64(hs.Permits)/float64(hs.Events))
		}
	} else {
		trace := home.GenerateWorkload(rng, hh, startAt, *events)
		fmt.Printf("simulating %d events from %s (seed %d)\n", len(trace), startAt.Format(time.RFC3339), *seed)
		stats, err = hh.Replay(trace)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replay: %s\n", stats)
		fmt.Printf("simulated span: %s .. %s\n",
			trace[0].At.Format(time.RFC3339), trace[len(trace)-1].At.Format(time.RFC3339))
	}
	fmt.Printf("decision rate: %.0f/sec (full stack: env re-evaluation + mediation)\n",
		float64(stats.Events)/stats.Duration.Seconds())

	if err := hh.Log.Verify(); err != nil {
		log.Fatalf("trusted log verification FAILED: %v", err)
	}
	fmt.Printf("trusted event log: %d entries, MAC chain verified\n", hh.Log.Len())

	audit := hh.Audit.Stats()
	fmt.Printf("audit trail: %d decisions (%d permits, %d denies, %d default-deny)\n",
		audit.Total, audit.Permits, audit.Denies, audit.DefaultDeny)
	for _, r := range hh.House.Residents() {
		fmt.Printf("  %-12s %4d requests, %4d denied\n",
			r.ID, audit.PerSubject[r.ID], audit.DeniedBySubj[r.ID])
	}
}
