package main

import (
	"reflect"
	"testing"

	"github.com/aware-home/grbac/internal/pdp"
)

func TestParseDecideFlags(t *testing.T) {
	req := parseDecideFlags([]string{
		"-subject", "alice",
		"-object", "tv",
		"-transaction", "use",
		"-env", "weekday-free-time,free-time",
		"-credentials", "subject:alice:0.75,role:child:0.98",
	})
	want := pdp.DecideRequest{
		Subject:     "alice",
		Object:      "tv",
		Transaction: "use",
		Environment: []string{"weekday-free-time", "free-time"},
		Credentials: []pdp.Credential{
			{Subject: "alice", Confidence: 0.75, Source: "grbacctl"},
			{Role: "child", Confidence: 0.98, Source: "grbacctl"},
		},
	}
	if !reflect.DeepEqual(req, want) {
		t.Fatalf("parsed = %+v\nwant   %+v", req, want)
	}
}

func TestParseDecideFlagsMinimal(t *testing.T) {
	req := parseDecideFlags([]string{"-subject", "a", "-object", "o", "-transaction", "t"})
	if req.Environment != nil {
		t.Fatalf("environment should be nil (server-evaluated), got %v", req.Environment)
	}
	if req.Credentials != nil {
		t.Fatalf("credentials should be nil, got %v", req.Credentials)
	}
}
