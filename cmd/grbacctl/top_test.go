package main

import (
	"strings"
	"testing"

	"github.com/aware-home/grbac/internal/obs"
)

func TestRenderTop(t *testing.T) {
	exposition := `
# TYPE grbac_policy_generation gauge
grbac_policy_generation 4
# TYPE grbac_decision_cache_hits_total counter
grbac_decision_cache_hits_total 30
# TYPE grbac_decision_cache_misses_total counter
grbac_decision_cache_misses_total 10
# TYPE grbac_http_request_duration_seconds histogram
grbac_http_request_duration_seconds_bucket{route="/v1/decide",le="0.0001"} 90
grbac_http_request_duration_seconds_bucket{route="/v1/decide",le="0.00025"} 96
grbac_http_request_duration_seconds_bucket{route="/v1/decide",le="+Inf"} 100
grbac_http_request_duration_seconds_sum{route="/v1/decide"} 0.01
grbac_http_request_duration_seconds_count{route="/v1/decide"} 100
# TYPE grbac_replica_lag_generations gauge
grbac_replica_lag_generations 2
grbac_replica_stale 0
`
	samples, err := obs.ParseText(strings.NewReader(exposition))
	if err != nil {
		t.Fatal(err)
	}
	out := renderTop(samples)

	for _, want := range []string{
		"generation=4",
		"hits=30",
		"misses=10",
		"hit_rate=75.0%",
		"/v1/decide",
		"lag=2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("top output missing %q:\n%s", want, out)
		}
	}
	// Mean = 0.01s / 100 = 100µs; p95 lands in the 250µs bucket.
	if !strings.Contains(out, "100µs") {
		t.Errorf("top output missing mean 100µs:\n%s", out)
	}
	if !strings.Contains(out, "250µs") {
		t.Errorf("top output missing p95 bucket 250µs:\n%s", out)
	}
	// No event/env samples: those sections are omitted.
	if strings.Contains(out, "events") || strings.Contains(out, "activations") {
		t.Errorf("top output has sections for absent families:\n%s", out)
	}
}

func TestRenderTopEmptyScrape(t *testing.T) {
	out := renderTop(nil)
	if !strings.Contains(out, "hit_rate=0.0%") {
		t.Errorf("empty scrape must render zeros without dividing by zero:\n%s", out)
	}
}
