package main

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/aware-home/grbac/internal/obs"
)

// renderTop condenses a /metrics scrape into an operator summary: policy
// and cache counters, admission state, per-route latency (mean and a
// bucket-resolution p95), and — when the server exports them — event-bus,
// environment-engine, and replication sections.
func renderTop(samples []obs.Sample) string {
	g := scrape(samples)
	var b strings.Builder

	fmt.Fprintf(&b, "policy   generation=%.0f  snapshot_compiles=%.0f  invalidations=%.0f  fail_safe_denies=%.0f\n",
		g.val("grbac_policy_generation"),
		g.val("grbac_policy_snapshot_compiles_total"),
		g.val("grbac_policy_invalidations_total"),
		g.val("grbac_fail_safe_denies_total"))

	hits := g.val("grbac_decision_cache_hits_total")
	misses := g.val("grbac_decision_cache_misses_total")
	rate := 0.0
	if hits+misses > 0 {
		rate = 100 * hits / (hits + misses)
	}
	fmt.Fprintf(&b, "cache    hits=%.0f  misses=%.0f  hit_rate=%.1f%%  entries=%.0f  evictions=%.0f\n",
		hits, misses, rate,
		g.val("grbac_decision_cache_entries"),
		g.val("grbac_decision_cache_evictions_total"))

	fmt.Fprintf(&b, "server   inflight=%.0f  shed=%.0f  recovered_panics=%.0f\n",
		g.val("grbac_http_inflight"),
		g.val("grbac_http_shed_total"),
		g.val("grbac_http_recovered_panics_total"))

	if routes := g.routes(); len(routes) > 0 {
		fmt.Fprintf(&b, "http     %-22s %10s %12s %12s\n", "route", "requests", "mean", "p95<=")
		for _, rt := range routes {
			fmt.Fprintf(&b, "         %-22s %10.0f %12s %12s\n",
				rt.route, rt.count, fmtSeconds(rt.mean), fmtSeconds(rt.p95))
		}
	}

	if g.has("grbac_event_published_total") {
		fmt.Fprintf(&b, "events   published=%.0f  delivered=%.0f  dropped=%.0f  subscriber_panics=%.0f\n",
			g.val("grbac_event_published_total"),
			g.val("grbac_event_deliveries_total"),
			g.val("grbac_event_dropped_total"),
			g.val("grbac_event_subscriber_panics_total"))
	}
	if g.has("grbac_env_role_activations_total") {
		fmt.Fprintf(&b, "env      activations=%.0f  deactivations=%.0f  defined_roles=%.0f  expired_context_keys=%.0f\n",
			g.val("grbac_env_role_activations_total"),
			g.val("grbac_env_role_deactivations_total"),
			g.val("grbac_env_defined_roles"),
			g.val("grbac_env_expired_context_keys"))
	}
	if g.has("grbac_replica_lag_generations") {
		fmt.Fprintf(&b, "replica  lag=%.0f  stale=%.0f  syncs=%.0f  errors=%.0f  watch_reconnects=%.0f  last_contact_age=%.1fs\n",
			g.val("grbac_replica_lag_generations"),
			g.val("grbac_replica_stale"),
			g.val("grbac_replica_syncs_total"),
			g.val("grbac_replica_errors_total"),
			g.val("grbac_replica_watch_reconnects_total"),
			g.val("grbac_replica_last_contact_age_seconds"))
	}
	return b.String()
}

// scrapeView indexes a sample list for the renderer.
type scrapeView struct{ samples []obs.Sample }

func scrape(samples []obs.Sample) scrapeView { return scrapeView{samples: samples} }

func (g scrapeView) has(name string) bool {
	for _, s := range g.samples {
		if s.Name == name {
			return true
		}
	}
	return false
}

// val returns the first sample's value for name (0 when absent).
func (g scrapeView) val(name string) float64 {
	for _, s := range g.samples {
		if s.Name == name {
			return s.Value
		}
	}
	return 0
}

// routeLatency is one route's digest of the request-duration histogram.
type routeLatency struct {
	route string
	count float64
	mean  float64
	// p95 is the upper bound of the bucket containing the 95th
	// percentile — the resolution the fixed buckets allow.
	p95 float64
}

// routes digests grbac_http_request_duration_seconds into per-route rows.
func (g scrapeView) routes() []routeLatency {
	const base = "grbac_http_request_duration_seconds"
	type bucket struct{ le, cum float64 }
	counts := map[string]float64{}
	sums := map[string]float64{}
	buckets := map[string][]bucket{}
	for _, s := range g.samples {
		route := s.Label("route")
		if route == "" {
			continue
		}
		switch s.Name {
		case base + "_count":
			counts[route] = s.Value
		case base + "_sum":
			sums[route] = s.Value
		case base + "_bucket":
			le := s.Label("le")
			v := -1.0 // sentinel for +Inf: sorts last, renders ">max"
			if le != "+Inf" {
				fmt.Sscanf(le, "%g", &v)
			}
			buckets[route] = append(buckets[route], bucket{le: v, cum: s.Value})
		}
	}
	out := make([]routeLatency, 0, len(counts))
	for route, n := range counts {
		r := routeLatency{route: route, count: n}
		if n > 0 {
			r.mean = sums[route] / n
			bs := buckets[route]
			sort.Slice(bs, func(i, j int) bool {
				if bs[i].le < 0 || bs[j].le < 0 {
					return bs[j].le < 0 && bs[i].le >= 0
				}
				return bs[i].le < bs[j].le
			})
			rank := 0.95 * n
			for _, bk := range bs {
				if bk.cum >= rank {
					r.p95 = bk.le
					break
				}
			}
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].route < out[j].route })
	return out
}

// fmtSeconds renders a seconds value at a human scale; negative marks the
// open +Inf bucket.
func fmtSeconds(s float64) string {
	if s < 0 {
		return ">max"
	}
	d := time.Duration(s * float64(time.Second))
	switch {
	case d == 0:
		return "0"
	case d < time.Microsecond:
		return d.String()
	case d < time.Millisecond:
		return d.Round(100 * time.Nanosecond).String()
	case d < time.Second:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Millisecond).String()
	}
}
