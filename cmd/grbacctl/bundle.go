package main

import (
	"context"
	"crypto/ed25519"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	grbac "github.com/aware-home/grbac"
	"github.com/aware-home/grbac/internal/bundle"
	"github.com/aware-home/grbac/internal/core"
	"github.com/aware-home/grbac/internal/pdp"
	"github.com/aware-home/grbac/internal/store"
)

// runBundle dispatches the bundle subcommands:
//
//	grbacctl bundle keygen -key bundle.key -pub bundle.pub
//	grbacctl bundle build -policy home.grbac -revision 3 -out policy.bundle
//	grbacctl bundle sign -in policy.bundle -key bundle.key -out policy.bundle
//	grbacctl bundle verify -in policy.bundle -pub bundle.pub
//	grbacctl -server http://pdp:8125 bundle push -in policy.bundle
//	grbacctl -server http://pdp:8125 bundle status
//
// build produces an unsigned bundle unless -key is given (build+sign in
// one step); sign adds or replaces the signature on an existing bundle.
func runBundle(ctx context.Context, client *pdp.Client, args []string) {
	if len(args) < 1 {
		log.Fatal("usage: grbacctl bundle keygen|build|sign|verify|push|status [flags]")
	}
	switch sub := args[0]; sub {
	case "keygen":
		fs := newBundleFlagSet("keygen")
		keyPath := fs.String("key", "bundle.key", "private key output (hex ed25519 seed, mode 0600)")
		pubPath := fs.String("pub", "bundle.pub", "public key output (hex)")
		parseOrDie(fs, args[1:])
		pub, priv, err := bundle.GenerateKey()
		if err != nil {
			log.Fatal(err)
		}
		if err := bundle.WriteKeyPair(*keyPath, *pubPath, pub, priv); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s and %s (key id %s)\n", *keyPath, *pubPath, bundle.KeyID(pub))
	case "build":
		fs := newBundleFlagSet("build")
		policyPath := fs.String("policy", "", "policy-language source to compile into the bundle")
		snapshotPath := fs.String("snapshot", "", "JSON policy snapshot to wrap instead of -policy")
		revision := fs.Uint64("revision", 0, "bundle revision (must advance past the target's active revision)")
		keyPath := fs.String("key", "", "sign with this private key (else the bundle is left unsigned)")
		out := fs.String("out", "policy.bundle", "bundle output path")
		parseOrDie(fs, args[1:])
		if *revision == 0 {
			log.Fatal("bundle build: -revision must be >= 1")
		}
		st := loadBundleState(*policyPath, *snapshotPath)
		b := bundle.Build(st, *revision, time.Now())
		if *keyPath != "" {
			signBundle(b, *keyPath)
		}
		writeBundle(b, *out)
		fmt.Printf("wrote %s (revision %d, %d permissions, signed=%v)\n",
			*out, b.Manifest.Revision, len(b.State.Permissions), b.Signature != "")
	case "sign":
		fs := newBundleFlagSet("sign")
		in := fs.String("in", "policy.bundle", "bundle to sign")
		keyPath := fs.String("key", "bundle.key", "private key (hex ed25519 seed)")
		out := fs.String("out", "", "output path (default: overwrite -in)")
		parseOrDie(fs, args[1:])
		b := readBundle(*in)
		signBundle(b, *keyPath)
		if *out == "" {
			*out = *in
		}
		writeBundle(b, *out)
		fmt.Printf("signed %s (revision %d, key id %s)\n", *out, b.Manifest.Revision, b.Manifest.KeyID)
	case "verify":
		fs := newBundleFlagSet("verify")
		in := fs.String("in", "policy.bundle", "bundle to verify")
		pubPath := fs.String("pub", "bundle.pub", "trusted public key (hex)")
		parseOrDie(fs, args[1:])
		pub, err := bundle.LoadPublicKey(*pubPath)
		if err != nil {
			log.Fatal(err)
		}
		b := readBundle(*in)
		if err := b.Verify(pub); err != nil {
			log.Fatalf("bundle verify: %v", err)
		}
		fmt.Printf("ok: revision %d signed by key %s at %s\n",
			b.Manifest.Revision, b.Manifest.KeyID, b.Manifest.CreatedAt.Format(time.RFC3339))
	case "push":
		fs := newBundleFlagSet("push")
		in := fs.String("in", "policy.bundle", "signed bundle to push")
		parseOrDie(fs, args[1:])
		raw, err := os.ReadFile(*in)
		if err != nil {
			log.Fatal(err)
		}
		resp, err := client.PushBundle(ctx, raw)
		if err != nil {
			log.Fatal(err)
		}
		printJSON(resp)
	case "status":
		parseOrDie(newBundleFlagSet("status"), args[1:])
		st, err := client.BundleStatus(ctx)
		if err != nil {
			log.Fatal(err)
		}
		printJSON(st)
	default:
		log.Fatalf("unknown bundle subcommand %q (want keygen|build|sign|verify|push|status)", sub)
	}
}

// loadBundleState compiles -policy or loads -snapshot into the state a
// bundle carries, mirroring grbacd's own policy loading.
func loadBundleState(policyPath, snapshotPath string) core.State {
	switch {
	case policyPath != "" && snapshotPath != "":
		log.Fatal("bundle build: -policy and -snapshot are mutually exclusive")
	case policyPath != "":
		src, err := os.ReadFile(policyPath)
		if err != nil {
			log.Fatal(err)
		}
		sys, _, err := grbac.BuildPolicy(string(src))
		if err != nil {
			log.Fatal(err)
		}
		st, _ := sys.Snapshot()
		return st
	case snapshotPath != "":
		sys, _, err := store.Load(snapshotPath)
		if err != nil {
			log.Fatal(err)
		}
		st, _ := sys.Snapshot()
		return st
	default:
		log.Fatal("bundle build: need -policy or -snapshot")
	}
	return core.State{}
}

func signBundle(b *bundle.Bundle, keyPath string) {
	priv, err := bundle.LoadPrivateKey(keyPath)
	if err != nil {
		log.Fatal(err)
	}
	pub := priv.Public().(ed25519.PublicKey)
	if err := b.Sign(priv, bundle.KeyID(pub)); err != nil {
		log.Fatal(err)
	}
}

func newBundleFlagSet(sub string) *flag.FlagSet {
	return flag.NewFlagSet("bundle "+sub, flag.ExitOnError)
}

func parseOrDie(fs *flag.FlagSet, args []string) {
	if err := fs.Parse(args); err != nil {
		log.Fatal(err)
	}
}

func readBundle(path string) *bundle.Bundle {
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	b, err := bundle.Decode(raw)
	if err != nil {
		log.Fatal(err)
	}
	return b
}

func writeBundle(b *bundle.Bundle, path string) {
	raw, err := b.Encode()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		log.Fatal(err)
	}
}
