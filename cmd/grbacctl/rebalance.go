package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"github.com/aware-home/grbac/internal/pdp"
	"github.com/aware-home/grbac/internal/shard"
)

// runRebalance drives the routing tier's online rebalance API:
//
//	grbacctl rebalance add -id s2 -addr http://localhost:8127 [-wait 2m]
//	grbacctl rebalance remove -id s1 [-wait 2m]
//	grbacctl rebalance status
//
// add/remove POST the action (the router answers 202 and migrates in
// the background); -wait polls status until the run finishes. status
// exits non-zero when the last run failed.
func runRebalance(ctx context.Context, client *pdp.Client, args []string) {
	if len(args) < 1 {
		log.Fatal("usage: grbacctl rebalance add|remove|status [flags]")
	}
	switch sub := args[0]; sub {
	case "status":
		st := fetchRebalanceStatus(ctx, client)
		printJSON(st)
		if st.Error != "" {
			os.Exit(1)
		}
	case "add", "remove":
		fs := flag.NewFlagSet("rebalance "+sub, flag.ExitOnError)
		id := fs.String("id", "", "shard ID")
		addr := fs.String("addr", "", "shard base URL (add only)")
		wait := fs.Duration("wait", 0, "poll until the rebalance finishes (0 = return once accepted)")
		if err := fs.Parse(args[1:]); err != nil {
			log.Fatal(err)
		}
		var st shard.Status
		req := pdp.RebalanceRequest{Action: sub, ID: *id, Addr: *addr}
		if err := client.Call(ctx, http.MethodPost, pdp.ShardRebalancePath, req, &st); err != nil {
			log.Fatalf("%v (rebalance needs a grbacd -route node started with -data-dir)", err)
		}
		fmt.Printf("rebalance %s %s accepted (map v%d -> v%d, %d moves)\n",
			sub, *id, st.FromVersion, st.ToVersion, st.TotalMoves)
		if *wait > 0 {
			waitRebalance(client, *wait)
		}
	default:
		log.Fatalf("unknown rebalance subcommand %q (want add, remove, or status)", sub)
	}
}

// waitRebalance polls the status endpoint until the run finishes or the
// wait budget runs out, then prints the final status and exits non-zero
// on failure or timeout.
func waitRebalance(client *pdp.Client, budget time.Duration) {
	deadline := time.Now().Add(budget)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		st := fetchRebalanceStatus(ctx, client)
		cancel()
		if !st.Active {
			printJSON(st)
			if st.Phase == "failed" || st.Error != "" {
				os.Exit(1)
			}
			return
		}
		if time.Now().After(deadline) {
			printJSON(st)
			log.Fatalf("rebalance still running after %v (moved %d/%d)", budget, st.Moved, st.TotalMoves)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func fetchRebalanceStatus(ctx context.Context, client *pdp.Client) shard.Status {
	var st shard.Status
	if err := client.Call(ctx, http.MethodGet, pdp.ShardRebalanceStatusPath, nil, &st); err != nil {
		log.Fatalf("%v (rebalance needs a grbacd -route node started with -data-dir)", err)
	}
	return st
}
