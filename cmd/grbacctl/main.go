// Command grbacctl is the CLI client for a grbacd policy decision point.
//
// Usage:
//
//	grbacctl -server http://localhost:8125 check -subject alice -object tv \
//	    -transaction use -env weekday-free-time
//	grbacctl decide -subject alice -object tv -transaction use
//	grbacctl state
//	grbacctl health
//	grbacctl stats
//	grbacctl top
//	grbacctl traces -limit 10
//	grbacctl -server http://follower:8126 replication
//	grbacctl -server http://router:8120 rebalance add -id s2 -addr http://localhost:8127 -wait 2m
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"github.com/aware-home/grbac/internal/pdp"
	"github.com/aware-home/grbac/internal/replica"
	"github.com/aware-home/grbac/internal/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("grbacctl: ")
	server := flag.String("server", "http://localhost:8125", "PDP base URL")
	timeout := flag.Duration("timeout", 5*time.Second, "request timeout")
	flag.Parse()

	if flag.NArg() < 1 {
		log.Fatal("usage: grbacctl [flags] check|decide|state|health|shards|rebalance|bundle|stats|top|traces|replication|audit|who-can|what-can [subcommand flags]")
	}
	client := pdp.NewClient(*server, nil)
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch cmd := flag.Arg(0); cmd {
	case "check", "decide":
		req := parseDecideFlags(flag.Args()[1:])
		if cmd == "check" {
			ok, err := client.Check(ctx, req)
			if err != nil {
				log.Fatal(err)
			}
			if ok {
				fmt.Println("permit")
				return
			}
			fmt.Println("deny")
			os.Exit(1)
		}
		d, err := client.Decide(ctx, req)
		if err != nil {
			log.Fatal(err)
		}
		printJSON(d)
	case "who-can":
		fs := flag.NewFlagSet("who-can", flag.ExitOnError)
		tx := fs.String("transaction", "", "transaction ID")
		object := fs.String("object", "", "target object")
		env := fs.String("env", "", "comma-separated active environment roles")
		if err := fs.Parse(flag.Args()[1:]); err != nil {
			log.Fatal(err)
		}
		subjects, err := client.WhoCan(ctx, *tx, *object, splitList(*env))
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range subjects {
			fmt.Println(s)
		}
	case "what-can":
		fs := flag.NewFlagSet("what-can", flag.ExitOnError)
		subject := fs.String("subject", "", "subject ID")
		env := fs.String("env", "", "comma-separated active environment roles")
		if err := fs.Parse(flag.Args()[1:]); err != nil {
			log.Fatal(err)
		}
		ents, err := client.WhatCan(ctx, *subject, splitList(*env))
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range ents {
			fmt.Printf("%s %s\n", e.Transaction, e.Object)
		}
	case "audit":
		fs := flag.NewFlagSet("audit", flag.ExitOnError)
		subject := fs.String("subject", "", "filter by subject")
		object := fs.String("object", "", "filter by object")
		denies := fs.Bool("denies", false, "denied requests only")
		limit := fs.Int("limit", 50, "most recent N records")
		if err := fs.Parse(flag.Args()[1:]); err != nil {
			log.Fatal(err)
		}
		records, err := client.Audit(ctx, pdp.AuditQuery{
			Subject: *subject, Object: *object, DeniesOnly: *denies, Limit: *limit,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range records {
			fmt.Println(r)
		}
	case "state":
		st, err := client.State(ctx)
		if err != nil {
			log.Fatal(err)
		}
		printJSON(st)
	case "stats":
		// Full statsz: cache counters plus the server's admission and
		// panic-recovery gauges (and replication lag on a follower).
		st, err := client.Statsz(ctx)
		if err != nil {
			log.Fatal(err)
		}
		printJSON(st)
	case "top":
		// Scrape GET /metrics and render the operator summary.
		samples, err := client.Metrics(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(renderTop(samples))
	case "traces":
		fs := flag.NewFlagSet("traces", flag.ExitOnError)
		limit := fs.Int("limit", 20, "most recent N traces")
		if err := fs.Parse(flag.Args()[1:]); err != nil {
			log.Fatal(err)
		}
		traces, err := client.Traces(ctx, *limit)
		if err != nil {
			log.Fatal(err)
		}
		printJSON(traces)
	case "replication":
		st, err := client.Statsz(ctx)
		if err != nil {
			log.Fatal(err)
		}
		if st.Replication == nil {
			log.Fatal("server is not a follower (no replication section in /v1/statsz)")
		}
		printReplication(*st.Replication)
		if st.Replication.Stale {
			os.Exit(1)
		}
	case "health":
		if client.Healthy(ctx) {
			fmt.Println("ok")
			return
		}
		fmt.Println("unhealthy")
		os.Exit(1)
	case "shards":
		// Ask the routing tier for its shard map, then probe each shard.
		var w shard.Wire
		if err := client.Call(ctx, "GET", pdp.ShardMapPath, nil, &w); err != nil {
			log.Fatalf("%v (is %s a grbacd -route node?)", err, *server)
		}
		fmt.Printf("shard map v%d (%d shards, %d vnodes)\n", w.Version, len(w.Shards), w.VNodes)
		exit := 0
		for _, s := range w.Shards {
			state := "ok"
			if !pdp.NewClient(s.Addr, nil).Healthy(ctx) {
				state = "UNREACHABLE"
				exit = 1
			}
			fmt.Printf("  %-12s %-32s %s\n", s.ID, s.Addr, state)
		}
		os.Exit(exit)
	case "bundle":
		runBundle(ctx, client, flag.Args()[1:])
	case "rebalance":
		runRebalance(ctx, client, flag.Args()[1:])
	default:
		log.Fatalf("unknown command %q", cmd)
	}
}

func parseDecideFlags(args []string) pdp.DecideRequest {
	fs := flag.NewFlagSet("decide", flag.ExitOnError)
	subject := fs.String("subject", "", "requesting subject")
	object := fs.String("object", "", "target object")
	tx := fs.String("transaction", "", "transaction ID")
	env := fs.String("env", "", "comma-separated active environment roles (empty = server environment)")
	creds := fs.String("credentials", "", "comma-separated credentials as kind:name:confidence, e.g. role:child:0.98,subject:alice:0.75")
	if err := fs.Parse(args); err != nil {
		log.Fatal(err)
	}
	req := pdp.DecideRequest{Subject: *subject, Object: *object, Transaction: *tx}
	if *env != "" {
		req.Environment = strings.Split(*env, ",")
	}
	if *creds != "" {
		for _, spec := range strings.Split(*creds, ",") {
			parts := strings.Split(spec, ":")
			if len(parts) != 3 {
				log.Fatalf("bad credential %q (want kind:name:confidence)", spec)
			}
			var conf float64
			if _, err := fmt.Sscanf(parts[2], "%g", &conf); err != nil {
				log.Fatalf("bad confidence in %q", spec)
			}
			c := pdp.Credential{Confidence: conf, Source: "grbacctl"}
			switch parts[0] {
			case "subject":
				c.Subject = parts[1]
			case "role":
				c.Role = parts[1]
			default:
				log.Fatalf("bad credential kind %q (want subject or role)", parts[0])
			}
			req.Credentials = append(req.Credentials, c)
		}
	}
	return req
}

// printReplication renders follower replication stats as key: value
// lines, one fact per line, so shell scripts can grep for e.g. "lag: 0".
func printReplication(st replica.Stats) {
	fmt.Printf("primary: %s\n", st.PrimaryURL)
	fmt.Printf("epoch: %s\n", st.Epoch)
	fmt.Printf("primary_generation: %d\n", st.PrimaryGeneration)
	fmt.Printf("applied_generation: %d\n", st.AppliedGeneration)
	fmt.Printf("lag: %d\n", st.Lag)
	fmt.Printf("syncs: %d\n", st.Syncs)
	fmt.Printf("errors: %d\n", st.Errors)
	fmt.Printf("last_sync_age_seconds: %.3f\n", st.LastSyncAgeSeconds)
	fmt.Printf("last_contact_age_seconds: %.3f\n", st.LastContactAgeSeconds)
	fmt.Printf("max_staleness_seconds: %.3f\n", st.MaxStalenessSeconds)
	fmt.Printf("stale: %v\n", st.Stale)
}

func splitList(raw string) []string {
	if raw == "" {
		return nil
	}
	return strings.Split(raw, ",")
}

func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Fatal(err)
	}
}
