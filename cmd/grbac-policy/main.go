// Command grbac-policy compiles and lints policy-language files: syntax
// and reference errors fail the build, and the static analyzer reports
// precedence conflicts, duplicate rules, and dead roles — the tooling the
// paper's usability story implies ("help avoid policy bugs", §4.1.2).
//
// Usage:
//
//	grbac-policy file.policy            # compile + lint
//	grbac-policy -summary file.policy   # also print a policy summary
//	grbac-policy -fmt file.policy       # canonical formatting
//	grbac-policy -builtin               # lint the built-in Aware Home policy
//	grbac-policy -diff old.policy new.policy   # decision-impact analysis
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	grbac "github.com/aware-home/grbac"
	"github.com/aware-home/grbac/internal/core"
	"github.com/aware-home/grbac/internal/policy"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("grbac-policy: ")
	summary := flag.Bool("summary", false, "print a policy summary after linting")
	builtin := flag.Bool("builtin", false, "lint the built-in Aware Home policy")
	format := flag.Bool("fmt", false, "print the canonically formatted policy instead of linting")
	diff := flag.Bool("diff", false, "compare two policy files by decision impact")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			log.Fatal("usage: grbac-policy -diff old.policy new.policy")
		}
		runDiff(flag.Arg(0), flag.Arg(1))
		return
	}

	var src string
	var name string
	switch {
	case *builtin:
		src, name = grbac.DefaultHomePolicy, "<builtin>"
	case flag.NArg() == 1:
		raw, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		src, name = string(raw), flag.Arg(0)
	default:
		log.Fatal("usage: grbac-policy [-summary] <file.policy> | grbac-policy -builtin")
	}

	compiled, err := policy.Compile(src)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	if *format {
		fmt.Print(compiled.Document().Format())
		return
	}
	diags := compiled.Analyze()
	warnings := 0
	for _, d := range diags {
		fmt.Printf("%s: %s\n", name, d)
		if d.Severity == policy.SeverityWarning {
			warnings++
		}
	}
	doc := compiled.Document()
	fmt.Printf("%s: compiled OK: %d roles, %d subjects, %d objects, %d transactions, %d rules, %d SoD constraints; %d diagnostics (%d warnings)\n",
		name, len(doc.Roles), len(doc.Subjects), len(doc.Objects),
		len(doc.Transactions), len(doc.Rules), len(doc.SoDs), len(diags), warnings)

	if *summary {
		fmt.Println("\nrules:")
		for _, r := range doc.Rules {
			conf := ""
			if r.MinConfidence > 0 {
				conf = fmt.Sprintf(" (confidence >= %.2f)", r.MinConfidence)
			}
			fmt.Printf("  %-6s %s may %s %s when %s%s\n",
				r.Effect, r.Subject, r.Transaction, r.Object, r.Environment, conf)
		}
	}
	if warnings > 0 {
		os.Exit(2)
	}
}

// runDiff builds both policies and reports every (subject, transaction,
// object, environment) whose outcome changes, probing the empty
// environment plus each environment role singleton from either policy.
func runDiff(oldPath, newPath string) {
	build := func(path string) (*core.System, *policy.Compiled) {
		raw, err := os.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		compiled, err := policy.Compile(string(raw))
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		sys := grbac.NewSystem()
		engine := grbac.NewEnvironmentEngine(grbac.NewEnvironmentStore())
		if err := compiled.Apply(sys, engine); err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		return sys, compiled
	}
	before, beforeDoc := build(oldPath)
	after, afterDoc := build(newPath)

	envSet := map[core.RoleID]bool{}
	for _, doc := range []*policy.Document{beforeDoc.Document(), afterDoc.Document()} {
		for _, r := range doc.Roles {
			if r.Kind == core.EnvironmentRole {
				envSet[r.ID] = true
			}
		}
	}
	environments := [][]core.RoleID{{}}
	for e := range envSet {
		environments = append(environments, []core.RoleID{e})
	}

	probes := core.ProbeUniverse(before, after, environments)
	divs := core.DiffDecisions(before, after, probes)
	for _, d := range divs {
		fmt.Println(d)
	}
	fmt.Printf("%d decision(s) change across %d probes\n", len(divs), len(probes))
	if len(divs) > 0 {
		os.Exit(3)
	}
}
