package grbac_test

// One testing.B benchmark per reproduction experiment (DESIGN.md §4,
// EXPERIMENTS.md). The experiment *reports* — tables, agreement counts,
// crossovers — come from `go run ./cmd/grbac-bench`; these benches measure
// the steady-state cost of each experiment's hot path under the standard
// Go benchmark harness.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	grbac "github.com/aware-home/grbac"
	"github.com/aware-home/grbac/internal/baseline/acl"
	"github.com/aware-home/grbac/internal/baseline/cbac"
	"github.com/aware-home/grbac/internal/baseline/gacl"
	"github.com/aware-home/grbac/internal/baseline/mls"
	"github.com/aware-home/grbac/internal/baseline/rbac"
	"github.com/aware-home/grbac/internal/baseline/tbac"
	"github.com/aware-home/grbac/internal/core"
	"github.com/aware-home/grbac/internal/experiments"
	"github.com/aware-home/grbac/internal/home"
	"github.com/aware-home/grbac/internal/temporal"
)

var benchStart = time.Date(2000, 1, 17, 20, 0, 0, 0, time.UTC) // Monday 8pm

func mustHousehold(b *testing.B) *home.Household {
	b.Helper()
	hh, err := home.NewHousehold(benchStart)
	if err != nil {
		b.Fatal(err)
	}
	return hh
}

// BenchmarkE1RBACMediation measures Figure 1's exec(s,t) rule on a random
// 200-subject policy.
func BenchmarkE1RBACMediation(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	s, subjects, txs := experiments.NewRandomRBAC(rng, 200, 40, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Exec(subjects[i%len(subjects)], txs[i%len(txs)])
	}
}

// BenchmarkE2HierarchyResolution measures effective-role closure over the
// Figure 2 hierarchy.
func BenchmarkE2HierarchyResolution(b *testing.B) {
	b.ReportAllocs()
	s, err := experiments.NewFigure2System()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.EffectiveSubjectRoles("alice"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3EntertainmentPolicy measures the full-stack §5.1 decision:
// environment engine evaluation plus three-role mediation.
func BenchmarkE3EntertainmentPolicy(b *testing.B) {
	b.ReportAllocs()
	hh := mustHousehold(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := hh.Decide("alice", "tv", "use")
		if err != nil {
			b.Fatal(err)
		}
		if !d.Allowed {
			b.Fatal("expected permit at Monday 8pm")
		}
	}
}

// BenchmarkE4PartialAuth measures mediation with a fused credential set
// under the paper's 90% threshold.
func BenchmarkE4PartialAuth(b *testing.B) {
	b.ReportAllocs()
	hh := mustHousehold(b)
	if err := hh.System.SetMinConfidence(0.90); err != nil {
		b.Fatal(err)
	}
	if err := hh.Auth.Record(hh.Floor.Sense(94, benchStart)...); err != nil {
		b.Fatal(err)
	}
	creds := hh.Auth.Credentials(benchStart)
	env := hh.Engine.ActiveRolesAt(benchStart, "alice")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := hh.System.Decide(core.Request{
			Subject: "alice", Object: "tv", Transaction: "use",
			Credentials: creds, Environment: env,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !d.Allowed {
			b.Fatal("expected role-credential permit")
		}
	}
}

// BenchmarkE5RepairmanWindow measures the location+interval gated decision.
func BenchmarkE5RepairmanWindow(b *testing.B) {
	b.ReportAllocs()
	hh := mustHousehold(b)
	hh.Clock.Set(time.Date(2000, 1, 17, 10, 0, 0, 0, time.UTC))
	if err := hh.House.MoveTo("repair-tech", "kitchen"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := hh.Decide("repair-tech", "dishwasher", "repair")
		if err != nil {
			b.Fatal(err)
		}
		if !d.Allowed {
			b.Fatal("expected permit inside window")
		}
	}
}

// BenchmarkE6ContentAndNegative measures a deny-overrides conflict (child
// matches both the appliance permit and the dangerous-appliance deny).
func BenchmarkE6ContentAndNegative(b *testing.B) {
	b.ReportAllocs()
	hh := mustHousehold(b)
	env := hh.Engine.ActiveRolesAt(benchStart, "alice")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := hh.System.Decide(core.Request{
			Subject: "alice", Object: "oven", Transaction: "use", Environment: env,
		})
		if err != nil {
			b.Fatal(err)
		}
		if d.Allowed {
			b.Fatal("expected deny")
		}
	}
}

// BenchmarkE7RBACEncoding measures the GRBAC encoding of a random RBAC
// policy against the native Figure 1 engine.
func BenchmarkE7RBACEncoding(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(7))
	s, subjects, txs := experiments.NewRandomRBAC(rng, 20, 8, 12)
	g, universe, err := s.EncodeGRBAC()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("native", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Exec(subjects[i%len(subjects)], txs[i%len(txs)])
		}
	})
	b.Run("grbac", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, _ = g.CheckAccess(core.Request{
				Subject: subjects[i%len(subjects)], Object: universe,
				Transaction: txs[i%len(txs)], Environment: []core.RoleID{},
			})
		}
	})
}

// BenchmarkE8TemporalEncoding measures periodic-authorization mediation in
// both engines.
func BenchmarkE8TemporalEncoding(b *testing.B) {
	b.ReportAllocs()
	s := tbac.NewSystem()
	if err := s.Add(tbac.Authorization{
		Subject: "bob", Object: "db", Action: "read",
		Period: temporal.MustParse("weekly mon-fri and daily 09:00-17:00"),
		Allow:  true,
	}); err != nil {
		b.Fatal(err)
	}
	enc, err := s.EncodeGRBAC()
	if err != nil {
		b.Fatal(err)
	}
	at := time.Date(2000, 1, 17, 10, 0, 0, 0, time.UTC)
	b.Run("native", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Allowed("bob", "db", "read", at)
		}
	})
	b.Run("grbac", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := enc.Allowed("bob", "db", "read", at); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE9LoadEncoding measures load-conditioned mediation.
func BenchmarkE9LoadEncoding(b *testing.B) {
	b.ReportAllocs()
	s := gacl.NewSystem()
	if err := s.Add(gacl.Rule{Subject: "ops", Program: "report", MaxLoad: 0.5}); err != nil {
		b.Fatal(err)
	}
	enc, err := s.EncodeGRBAC()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("native", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.CanExec("ops", "report", 0.3)
		}
	})
	b.Run("grbac", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := enc.CanExec("ops", "report", 0.3); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE10ContentEncoding measures content-based mediation.
func BenchmarkE10ContentEncoding(b *testing.B) {
	b.ReportAllocs()
	s := cbac.NewSystem()
	if err := s.Index("q3", "finance", "microsoft"); err != nil {
		b.Fatal(err)
	}
	if err := s.Add(cbac.Rule{Subject: "analyst", Query: cbac.Query{"microsoft"}, Allow: true}); err != nil {
		b.Fatal(err)
	}
	g, err := s.EncodeGRBAC()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("native", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.CanRead("analyst", "q3")
		}
	})
	b.Run("grbac", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, _ = g.CheckAccess(core.Request{
				Subject: "analyst", Object: "q3", Transaction: "read",
				Environment: []core.RoleID{},
			})
		}
	})
}

// BenchmarkE11MLSEncoding measures lattice mediation.
func BenchmarkE11MLSEncoding(b *testing.B) {
	b.ReportAllocs()
	s := mls.NewSystem()
	if err := s.Clear("officer", mls.Secret); err != nil {
		b.Fatal(err)
	}
	if err := s.Classify("warplan", mls.Secret); err != nil {
		b.Fatal(err)
	}
	g, err := s.EncodeGRBAC()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("native", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.CanRead("officer", "warplan")
		}
	})
	b.Run("grbac", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, _ = g.CheckAccess(core.Request{
				Subject: "officer", Object: "warplan", Transaction: "read",
				Environment: []core.RoleID{},
			})
		}
	})
}

// BenchmarkE12DecisionLatency sweeps GRBAC decision cost along each scale
// axis and against the baselines, mirroring experiment E12.
func BenchmarkE12DecisionLatency(b *testing.B) {
	b.ReportAllocs()
	b.Run("model/acl", func(b *testing.B) {
		b.ReportAllocs()
		a := acl.NewSystem()
		if err := a.Add(acl.Entry{Subject: "p", Action: "use", Object: "o", Allow: true}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a.Allowed("p", "use", "o")
		}
	})
	b.Run("model/rbac", func(b *testing.B) {
		b.ReportAllocs()
		r := rbac.NewSystem()
		if err := r.AuthorizeRole("p", "r"); err != nil {
			b.Fatal(err)
		}
		if err := r.AuthorizeTransaction("r", "use"); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Exec("p", "use")
		}
	})
	b.Run("model/grbac", func(b *testing.B) {
		b.ReportAllocs()
		s, req, err := experiments.BuildScaledGRBAC(1, 1, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Decide(req); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("rules/%d", n), func(b *testing.B) {
			b.ReportAllocs()
			s, req, err := experiments.BuildScaledGRBAC(n, 16, 0, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Decide(req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, d := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("depth/%d", d), func(b *testing.B) {
			b.ReportAllocs()
			s, req, err := experiments.BuildScaledGRBAC(16, 4, d, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Decide(req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, e := range []int{1, 64, 256} {
		b.Run(fmt.Sprintf("envroles/%d", e), func(b *testing.B) {
			b.ReportAllocs()
			s, req, err := experiments.BuildScaledGRBAC(16, 4, 0, e)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Decide(req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPermissionIndex quantifies the per-transaction
// permission index: 4096 rules over 64 transactions, with and without the
// index (DESIGN.md design-choice ablation).
func BenchmarkAblationPermissionIndex(b *testing.B) {
	b.ReportAllocs()
	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		s, req, err := experiments.BuildMultiTxGRBAC(4096, 64)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Decide(req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		s, req, err := experiments.BuildMultiTxGRBAC(4096, 64, core.WithoutPermissionIndex())
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Decide(req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE13PolicySize measures the cost of *building* the §5.1 policy
// in each model for a 20-child, 50-device household — the administration
// burden the paper's usability claim is about.
func BenchmarkE13PolicySize(b *testing.B) {
	b.ReportAllocs()
	const children, devices = 20, 50
	b.Run("acl", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a := acl.NewSystem()
			for c := 0; c < children; c++ {
				for d := 0; d < devices; d++ {
					if err := a.Add(acl.Entry{
						Subject: core.SubjectID(fmt.Sprintf("c%d", c)),
						Action:  "use",
						Object:  core.ObjectID(fmt.Sprintf("d%d", d)),
						Allow:   true,
					}); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	})
	b.Run("grbac", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g := core.NewSystem()
			if err := g.AddRole(core.Role{ID: "child", Kind: core.SubjectRole}); err != nil {
				b.Fatal(err)
			}
			if err := g.AddRole(core.Role{ID: "ent", Kind: core.ObjectRole}); err != nil {
				b.Fatal(err)
			}
			if err := g.AddTransaction(core.SimpleTransaction("use")); err != nil {
				b.Fatal(err)
			}
			for c := 0; c < children; c++ {
				id := core.SubjectID(fmt.Sprintf("c%d", c))
				if err := g.AddSubject(id); err != nil {
					b.Fatal(err)
				}
				if err := g.AssignSubjectRole(id, "child"); err != nil {
					b.Fatal(err)
				}
			}
			for d := 0; d < devices; d++ {
				id := core.ObjectID(fmt.Sprintf("d%d", d))
				if err := g.AddObject(id); err != nil {
					b.Fatal(err)
				}
				if err := g.AssignObjectRole(id, "ent"); err != nil {
					b.Fatal(err)
				}
			}
			if err := g.Grant(core.Permission{
				Subject: "child", Object: "ent",
				Environment: core.AnyEnvironment, Transaction: "use", Effect: core.Permit,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE14SodActivation measures role activation with a dynamic SoD
// constraint installed.
func BenchmarkE14SodActivation(b *testing.B) {
	b.ReportAllocs()
	s := grbac.NewSystem()
	for _, r := range []grbac.RoleID{"teller", "account-holder"} {
		if err := s.AddRole(grbac.Role{ID: r, Kind: grbac.SubjectRole}); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.AddSubject("joe"); err != nil {
		b.Fatal(err)
	}
	for _, r := range []grbac.RoleID{"teller", "account-holder"} {
		if err := s.AssignSubjectRole("joe", r); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.AddSoDConstraint(grbac.SoDConstraint{
		Name: "x", Kind: grbac.DynamicSoD,
		Roles: []grbac.RoleID{"teller", "account-holder"},
	}); err != nil {
		b.Fatal(err)
	}
	sid, err := s.CreateSession("joe")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.ActivateRole(sid, "teller"); err != nil {
			b.Fatal(err)
		}
		if err := s.DeactivateRole(sid, "teller"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolicyCompile measures end-to-end compilation of the full Aware
// Home policy (lexer through reference checking).
func BenchmarkPolicyCompile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := grbac.CompilePolicy(grbac.DefaultHomePolicy); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadReplay measures the simulator's full-stack event rate.
func BenchmarkWorkloadReplay(b *testing.B) {
	b.ReportAllocs()
	hh := mustHousehold(b)
	rng := rand.New(rand.NewSource(1))
	trace := home.GenerateWorkload(rng, hh, benchStart, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hh.Replay(trace); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11CachedMediation quantifies the decision cache (DESIGN.md §5):
// the same E1-style scaled mediation workload served warm from the cache,
// uncached, and under worst-case invalidation churn, plus the full-stack
// E3 household decision warm vs uncached. The warm/uncached ratio is the
// headline number recorded in EXPERIMENTS.md.
func BenchmarkE11CachedMediation(b *testing.B) {
	b.ReportAllocs()
	scaled := func(b *testing.B, opts ...grbac.Option) (*grbac.System, grbac.Request) {
		b.Helper()
		s, req, err := experiments.BuildScaledGRBAC(256, 16, 8, 4, opts...)
		if err != nil {
			b.Fatal(err)
		}
		return s, req
	}
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		s, req := scaled(b)
		if _, err := s.Decide(req); err != nil { // prime the cache
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Decide(req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("uncached", func(b *testing.B) {
		b.ReportAllocs()
		s, req := scaled(b, core.WithoutDecisionCache())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Decide(req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold-churn", func(b *testing.B) {
		b.ReportAllocs()
		// Worst case: every iteration mutates the system first, so the
		// cache never hits and each decision also pays the put.
		s, req := scaled(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.SetMinConfidence(0); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Decide(req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("e3-household-warm", func(b *testing.B) {
		b.ReportAllocs()
		hh := mustHousehold(b)
		if _, err := hh.Decide("alice", "tv", "use"); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := hh.Decide("alice", "tv", "use"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("e3-household-uncached", func(b *testing.B) {
		b.ReportAllocs()
		hh := mustHousehold(b)
		twin := core.NewSystem(core.WithoutDecisionCache())
		if err := twin.Import(hh.System.Export()); err != nil {
			b.Fatal(err)
		}
		env := hh.Engine.ActiveRolesAt(benchStart, "alice")
		req := core.Request{Subject: "alice", Object: "tv", Transaction: "use", Environment: env}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := twin.Decide(req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE17ParallelDecide measures mediation throughput under
// concurrent callers (EXPERIMENTS.md E17): the lock-free compiled-snapshot
// path against the serialized mutex-guarded path, each driven by
// b.RunParallel across GOMAXPROCS goroutines (sweep with -cpu 1,2,4,8,16).
// The requests rotate through distinct cache keys so the run exercises the
// sharded cache, not a single entry.
func BenchmarkE17ParallelDecide(b *testing.B) {
	run := func(b *testing.B, opts ...grbac.Option) {
		b.Helper()
		b.ReportAllocs()
		s, req, err := experiments.BuildScaledGRBAC(256, 16, 8, 4, opts...)
		if err != nil {
			b.Fatal(err)
		}
		envs := [][]core.RoleID{req.Environment, {}, {req.Environment[0]}}
		if _, err := s.Decide(req); err != nil { // compile the snapshot, prime the cache
			b.Fatal(err)
		}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			r := req
			i := 0
			for pb.Next() {
				r.Environment = envs[i%len(envs)]
				i++
				if _, err := s.Decide(r); err != nil {
					b.Error(err)
					return
				}
			}
		})
	}
	b.Run("lockfree", func(b *testing.B) { run(b) })
	b.Run("serialized", func(b *testing.B) { run(b, grbac.WithSerializedDecide()) })
}

// BenchmarkE17CheckAccessWarm measures the boolean fast path: a warm
// cache hit answered from the sharded cache without cloning the decision.
// The benchguard asserts 0 allocs/op here.
func BenchmarkE17CheckAccessWarm(b *testing.B) {
	b.ReportAllocs()
	s, req, err := experiments.BuildScaledGRBAC(256, 16, 8, 4)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.CheckAccess(req); err != nil { // prime the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.CheckAccess(req); err != nil {
			b.Fatal(err)
		}
	}
}
