// Package grbac is a complete implementation of Generalized Role-Based
// Access Control (Covington, Moyer, Ahamad: "Generalized Role-Based Access
// Control for Securing Future Applications"), the access model that extends
// traditional RBAC by applying roles uniformly to subjects, objects, and
// environment state.
//
// # Quick start
//
//	sys := grbac.NewSystem()
//	_ = sys.AddRole(grbac.Role{ID: "child", Kind: grbac.SubjectRole})
//	_ = sys.AddRole(grbac.Role{ID: "entertainment-devices", Kind: grbac.ObjectRole})
//	_ = sys.AddRole(grbac.Role{ID: "weekday-free-time", Kind: grbac.EnvironmentRole})
//	_ = sys.AddSubject("alice")
//	_ = sys.AssignSubjectRole("alice", "child")
//	_ = sys.AddObject("tv")
//	_ = sys.AssignObjectRole("tv", "entertainment-devices")
//	_ = sys.AddTransaction(grbac.SimpleTransaction("use"))
//	_ = sys.Grant(grbac.Permission{
//	    Subject:     "child",
//	    Object:      "entertainment-devices",
//	    Environment: "weekday-free-time",
//	    Transaction: "use",
//	    Effect:      grbac.Permit,
//	})
//	d, _ := sys.Decide(grbac.Request{
//	    Subject: "alice", Object: "tv", Transaction: "use",
//	    Environment: []grbac.RoleID{"weekday-free-time"},
//	})
//	fmt.Println(d.Allowed) // true
//
// # Layers
//
// The facade re-exports the full stack:
//
//   - the core model (System, roles, permissions, sessions, SoD,
//     confidence-gated partial authentication);
//   - the policy language (CompilePolicy / BuildPolicy) for declarative,
//     homeowner-readable policies;
//   - the environment engine (NewEnvironmentStore / NewEnvironmentEngine)
//     for time-, state-, and location-activated environment roles;
//   - the temporal expression language (ParsePeriod);
//   - the simulated Aware Home (NewHousehold) used by the examples and the
//     paper-reproduction experiments.
//
// Deeper integrations (event bus, sensors, audit, persistence, the HTTP
// policy decision point) live in the corresponding internal packages and
// are exercised by the cmd/ tools; see README.md for the map.
//
// # Lock-free mediation and decision caching
//
// Mutating calls — role and hierarchy edits, grants and revocations,
// assignments, session changes, configuration — compile the policy into an
// immutable snapshot (role IDs interned to dense integers, role closures as
// bitsets, permissions pre-bucketed per transaction) that is published
// atomically, so Decide, CheckAccess, and DecideBatch mediate without
// taking any lock and scale linearly with concurrent callers. Decide also
// memoizes its results in a bounded, sharded cache keyed by (subject,
// session, object, transaction, credential set, resolved environment
// snapshot). Every cache entry is stamped with the snapshot's monotonic
// generation, so one mutation invalidates all cached decisions at once and
// a warm hit is always byte-identical to what a fresh computation would
// return. DecideBatch answers many requests against one snapshot, making
// each batch internally consistent even under concurrent mutation.
// System.Stats reports hit/miss/eviction/invalidation counters; tune or
// disable the cache with WithDecisionCacheSize and WithoutDecisionCache,
// and force the classic mutex-guarded path with WithSerializedDecide. See
// DESIGN.md for the consistency argument.
package grbac

import (
	"time"

	"github.com/aware-home/grbac/internal/core"
	"github.com/aware-home/grbac/internal/environment"
	"github.com/aware-home/grbac/internal/home"
	"github.com/aware-home/grbac/internal/policy"
	"github.com/aware-home/grbac/internal/temporal"
)

// Core model types.
type (
	// System is the GRBAC policy store and decision engine.
	System = core.System
	// Role is a subject, object, or environment role.
	Role = core.Role
	// RoleID names a role.
	RoleID = core.RoleID
	// RoleKind distinguishes subject, object, and environment roles.
	RoleKind = core.RoleKind
	// SubjectID names a user.
	SubjectID = core.SubjectID
	// ObjectID names a resource.
	ObjectID = core.ObjectID
	// TransactionID names a transaction.
	TransactionID = core.TransactionID
	// Transaction is a named series of accesses.
	Transaction = core.Transaction
	// Access is one step of a transaction.
	Access = core.Access
	// Action is a primitive access verb.
	Action = core.Action
	// Permission is one authorization rule over a role triple.
	Permission = core.Permission
	// Effect is Permit or Deny.
	Effect = core.Effect
	// Request is one access-mediation question.
	Request = core.Request
	// Decision is an explained mediation outcome.
	Decision = core.Decision
	// BatchResult pairs one DecideBatch item's decision with its error.
	BatchResult = core.BatchResult
	// Match is one permission that applied to a request.
	Match = core.Match
	// Credential is authentication evidence with a confidence level.
	Credential = core.Credential
	// CredentialSet accompanies partially authenticated requests.
	CredentialSet = core.CredentialSet
	// SessionID names a login session.
	SessionID = core.SessionID
	// SessionInfo is a read-only session snapshot.
	SessionInfo = core.SessionInfo
	// SoDConstraint is a separation-of-duty constraint.
	SoDConstraint = core.SoDConstraint
	// SoDKind is StaticSoD or DynamicSoD.
	SoDKind = core.SoDKind
	// ConflictStrategy resolves permit/deny conflicts.
	ConflictStrategy = core.ConflictStrategy
	// State is a serializable policy snapshot.
	State = core.State
	// Option configures NewSystem.
	Option = core.Option
	// EnvironmentSource supplies active environment roles to a System.
	EnvironmentSource = core.EnvironmentSource
	// Stats is a snapshot of the decision-cache counters.
	Stats = core.Stats
)

// Role kinds.
const (
	SubjectRole     = core.SubjectRole
	ObjectRole      = core.ObjectRole
	EnvironmentRole = core.EnvironmentRole
)

// Effects.
const (
	Permit = core.Permit
	Deny   = core.Deny
)

// Separation-of-duty kinds.
const (
	StaticSoD  = core.StaticSoD
	DynamicSoD = core.DynamicSoD
)

// Wildcards.
const (
	AnySubject     = core.AnySubject
	AnyObject      = core.AnyObject
	AnyEnvironment = core.AnyEnvironment
	AnyTransaction = core.AnyTransaction
)

// Sentinel errors.
var (
	ErrNotFound      = core.ErrNotFound
	ErrExists        = core.ErrExists
	ErrCycle         = core.ErrCycle
	ErrStaticSoD     = core.ErrStaticSoD
	ErrDynamicSoD    = core.ErrDynamicSoD
	ErrNotAuthorized = core.ErrNotAuthorized
	ErrInvalid       = core.ErrInvalid
	ErrNoSession     = core.ErrNoSession
)

// NewSystem returns an empty GRBAC system with deny-overrides conflict
// resolution.
func NewSystem(opts ...Option) *System { return core.NewSystem(opts...) }

// WithConflictStrategy sets the role-precedence strategy.
func WithConflictStrategy(cs ConflictStrategy) Option { return core.WithConflictStrategy(cs) }

// WithMinConfidence sets the system-wide authentication threshold.
func WithMinConfidence(t float64) Option { return core.WithMinConfidence(t) }

// WithEnvironmentSource installs the provider of active environment roles.
func WithEnvironmentSource(src EnvironmentSource) Option { return core.WithEnvironmentSource(src) }

// WithClock overrides the system's time source.
func WithClock(now func() time.Time) Option { return core.WithClock(now) }

// WithDecisionCacheSize bounds the decision cache to n entries; n <= 0
// disables caching entirely.
func WithDecisionCacheSize(n int) Option { return core.WithDecisionCacheSize(n) }

// WithoutDecisionCache disables decision memoization; every Decide call
// runs the full mediation rule.
func WithoutDecisionCache() Option { return core.WithoutDecisionCache() }

// WithSerializedDecide forces the classic mutex-guarded decision path
// instead of lock-free compiled snapshots — a debugging and benchmarking
// aid, not a production configuration.
func WithSerializedDecide() Option { return core.WithSerializedDecide() }

// Conflict strategies.
type (
	// DenyOverrides makes any matching deny win (the default).
	DenyOverrides = core.DenyOverrides
	// PermitOverrides makes any matching permit win.
	PermitOverrides = core.PermitOverrides
	// MostSpecificWins lets the deepest subject role decide.
	MostSpecificWins = core.MostSpecificWins
)

// SimpleTransaction builds a one-step transaction from a verb.
func SimpleTransaction(verb string) Transaction { return core.SimpleTransaction(verb) }

// IdentityCredential asserts "this is subject s" with a confidence level.
func IdentityCredential(s SubjectID, confidence float64, source string) Credential {
	return core.IdentityCredential(s, confidence, source)
}

// RoleCredential asserts "the requester holds role r" with a confidence
// level — the paper's sensor-to-role authentication path.
func RoleCredential(r RoleID, confidence float64, source string) Credential {
	return core.RoleCredential(r, confidence, source)
}

// Policy language.
type (
	// CompiledPolicy is a checked policy ready to apply.
	CompiledPolicy = policy.Compiled
	// PolicyDiagnostic is a static-analysis finding.
	PolicyDiagnostic = policy.Diagnostic
)

// CompilePolicy parses and checks policy-language source.
func CompilePolicy(src string) (*CompiledPolicy, error) { return policy.Compile(src) }

// BuildPolicy compiles source and returns a wired system and environment
// engine over a private, empty attribute store.
func BuildPolicy(src string, opts ...Option) (*System, *EnvironmentEngine, error) {
	return policy.Build(src, opts...)
}

// BuildPolicyWithStore is BuildPolicy with a caller-supplied environment
// store, for applications that feed live attributes (locations, sensor
// facts, system load) to the policy's environment roles.
func BuildPolicyWithStore(src string, store *EnvironmentStore, opts ...Option) (*System, *EnvironmentEngine, error) {
	return policy.BuildWithStore(src, store, opts...)
}

// Environment engine.
type (
	// EnvironmentEngine evaluates environment role activation.
	EnvironmentEngine = environment.Engine
	// EnvironmentStore holds the live environment attribute snapshot.
	EnvironmentStore = environment.Store
	// EnvironmentCondition defines when an environment role is active.
	EnvironmentCondition = environment.Condition
)

// EnvironmentValue is a typed environment attribute value.
type EnvironmentValue = environment.Value

// EnvString builds a string attribute value.
func EnvString(s string) EnvironmentValue { return environment.String(s) }

// EnvNumber builds a numeric attribute value.
func EnvNumber(n float64) EnvironmentValue { return environment.Number(n) }

// EnvBool builds a boolean attribute value.
func EnvBool(b bool) EnvironmentValue { return environment.Bool(b) }

// NewEnvironmentStore builds an empty attribute store.
func NewEnvironmentStore() *EnvironmentStore { return environment.NewStore() }

// NewEnvironmentEngine builds an engine over a store.
func NewEnvironmentEngine(store *EnvironmentStore) *EnvironmentEngine {
	return environment.NewEngine(store)
}

// Temporal expressions.
type (
	// Period is a (possibly periodic) set of instants.
	Period = temporal.Period
)

// ParsePeriod reads a period expression such as
// "weekly mon-fri and daily 19:00-22:00".
func ParsePeriod(src string) (Period, error) { return temporal.Parse(src) }

// Aware Home simulation.
type (
	// Household is the fully wired simulated Aware Home.
	Household = home.Household
)

// NewHousehold assembles the paper's standard household with its default
// policy, simulated clock, sensors, and trusted event log.
func NewHousehold(start time.Time) (*Household, error) { return home.NewHousehold(start) }

// DefaultHomePolicy is the complete Aware Home policy from the paper's §3
// and §5 examples, in policy-language source form.
const DefaultHomePolicy = home.DefaultPolicy
