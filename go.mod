module github.com/aware-home/grbac

go 1.22
