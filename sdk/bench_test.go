package sdk

import (
	"context"
	"testing"

	"github.com/aware-home/grbac/internal/pdp"
)

// BenchmarkE21EmbeddedMediation is the experiment behind EXPERIMENTS.md
// E21 and benchguard guard 10: the same warm CheckAccess workload served
// in-process from the replicated snapshot versus over the HTTP round trip
// to the primary. The embedded path must stay allocation-free — it is the
// server's own zero-alloc cache hit running in the caller's address
// space — and the gap between the two is the QPS lever the SDK exists
// for (~ns vs ~µs).
func BenchmarkE21EmbeddedMediation(b *testing.B) {
	_, srv := newPrimary(b)
	c := newEmbedded(b, srv.URL)
	ctx := context.Background()
	req := permitReq()

	b.Run("embedded", func(b *testing.B) {
		if ok, err := c.CheckAccess(ctx, req); err != nil || !ok {
			b.Fatalf("warmup = %v, %v; want permit", ok, err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ok, err := c.CheckAccess(ctx, req)
			if err != nil || !ok {
				b.Fatalf("CheckAccess = %v, %v", ok, err)
			}
		}
	})

	b.Run("remote", func(b *testing.B) {
		rc := pdp.NewClient(srv.URL, srv.Client())
		wreq := pdp.FromCoreRequest(req)
		if ok, err := rc.Check(ctx, wreq); err != nil || !ok {
			b.Fatalf("warmup = %v, %v; want permit", ok, err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ok, err := rc.Check(ctx, wreq)
			if err != nil || !ok {
				b.Fatalf("remote Check = %v, %v", ok, err)
			}
		}
	})
}
