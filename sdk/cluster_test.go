package sdk

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/aware-home/grbac/internal/core"
	"github.com/aware-home/grbac/internal/pdp"
	"github.com/aware-home/grbac/internal/policy"
	"github.com/aware-home/grbac/internal/replica"
	"github.com/aware-home/grbac/internal/store"
)

// openDurablePrimary boots a durable store in dir (seeding the test
// policy on first boot) and wires a PDP server as a durable primary:
// epoch-pinned replication source with the store as delta provider.
func openDurablePrimary(t *testing.T, dir string) (*store.Durable, *pdp.Server) {
	t.Helper()
	compiled, err := policy.Compile(testPolicy)
	if err != nil {
		t.Fatal(err)
	}
	seedSys := core.NewSystem()
	if err := compiled.Apply(seedSys, nil); err != nil {
		t.Fatal(err)
	}
	seed := seedSys.Export()
	dur, err := store.Open(dir, store.WithSeedState(&seed), store.WithDurableLogger(quiet))
	if err != nil {
		t.Fatal(err)
	}
	sys := dur.System()
	srv := pdp.NewServer(sys,
		pdp.WithReplicaSource(replica.NewSource(sys,
			replica.WithSourceEpoch(dur.Epoch()),
			replica.WithDeltaProvider(dur))),
		pdp.WithDurableStore(dur),
		pdp.WithWatchMaxWait(100*time.Millisecond))
	return dur, srv
}

// TestSDKClusterRidesPrimaryRestart is the acceptance scenario for the
// embedded data plane: an SDK node bootstraps from a durable primary,
// sees a primary mutation arrive in its next decision purely through
// watch-driven invalidation (the test waits on the policy-change signal,
// never a polling sleep), survives the primary dying and restarting from
// its data directory under the same epoch, and converges on post-restart
// policy through the delta feed.
func TestSDKClusterRidesPrimaryRestart(t *testing.T) {
	dir := t.TempDir()
	dur1, server1 := openDurablePrimary(t, dir)

	// The SDK needs one stable primary URL across the restart, so the
	// test server proxies to whichever incarnation holds the pointer.
	var current atomic.Pointer[pdp.Server]
	current.Store(server1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		current.Load().ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	c := newEmbedded(t, ts.URL)
	if ok, err := c.CheckAccess(context.Background(), permitReq()); err != nil || !ok {
		t.Fatalf("bootstrap CheckAccess = %v, %v; want permit", ok, err)
	}

	// awaitFlip waits for the embedded node's decision on permitReq to
	// reach want, driven entirely by the push signal.
	awaitFlip := func(what string, want bool) {
		t.Helper()
		deadline := time.After(10 * time.Second)
		for {
			d, err := c.Decide(context.Background(), permitReq())
			if err != nil {
				t.Fatal(err)
			}
			if d.Allowed == want {
				if d.Source != SourceLocal {
					t.Fatalf("%s: decision source = %s, want local", what, d.Source)
				}
				return
			}
			ch := c.PolicyChanged()
			// Re-check after arming: the change may have landed between
			// the Decide above and the arm.
			if d, err := c.Decide(context.Background(), permitReq()); err == nil && d.Allowed == want {
				return
			}
			select {
			case <-ch:
			case <-deadline:
				t.Fatalf("timed out waiting for %s; stats %+v", what, c.Stats())
			}
		}
	}

	// A primary mutation must reach the embedded node's next decision via
	// the watch feed.
	if err := dur1.System().Grant(core.Permission{
		Subject: "child", Object: "entertainment-devices",
		Environment: "weekday-free-time", Transaction: "use",
		Effect: core.Deny,
	}); err != nil {
		t.Fatal(err)
	}
	awaitFlip("deny grant to propagate", false)
	preRestart := c.Stats()
	if preRestart.Replication.Syncs != 1 {
		t.Fatalf("steady-state propagation used %d full snapshots, want 1 (deltas only); stats %+v",
			preRestart.Replication.Syncs, preRestart)
	}

	// Kill the primary without ceremony and restart from the same data
	// directory: same epoch, state intact, feed resumes.
	epochBefore := dur1.Epoch()
	dur2, server2 := openDurablePrimary(t, dir)
	defer dur2.Close()
	if dur2.Epoch() != epochBefore {
		t.Fatalf("epoch changed across restart: %s -> %s", epochBefore, dur2.Epoch())
	}
	current.Store(server2)

	// Post-restart policy still converges: revoking the deny flips the
	// embedded decision back to permit, again push-driven.
	if err := dur2.System().Revoke(core.Permission{
		Subject: "child", Object: "entertainment-devices",
		Environment: "weekday-free-time", Transaction: "use",
		Effect: core.Deny,
	}); err != nil {
		t.Fatal(err)
	}
	awaitFlip("post-restart revoke to propagate", true)

	post := c.Stats()
	if post.Replication.Epoch != epochBefore {
		t.Fatalf("SDK epoch drifted across restart: %s != %s", post.Replication.Epoch, epochBefore)
	}
	if post.Replication.AppliedGeneration != dur2.System().Generation() {
		t.Fatalf("SDK at generation %d, primary at %d",
			post.Replication.AppliedGeneration, dur2.System().Generation())
	}
	if post.RemoteFallbacks != 0 || post.FailSafeDenies != 0 {
		t.Fatalf("embedded mediation leaked to fallback paths: %+v", post)
	}
}
