package sdk

import "github.com/aware-home/grbac/internal/obs"

// RegisterMetrics exports the embedded client's mediation and replication
// health on a metrics registry as scrape-time collectors, so the decision
// hot path carries no instrumentation beyond its atomic counters. It
// composes the underlying puller's grbac_replica_* series with the SDK's
// own grbac_sdk_* series.
func (c *Client) RegisterMetrics(reg *obs.Registry) {
	if c == nil || reg == nil {
		return
	}
	reg.NewCounterFunc("grbac_sdk_local_decisions_total",
		"Requests mediated in-process against the replicated snapshot.",
		func() float64 { return float64(c.localDecisions.Load()) })
	reg.NewCounterFunc("grbac_sdk_remote_fallbacks_total",
		"Requests routed to the primary (session/live-environment flows, stale snapshot).",
		func() float64 { return float64(c.remoteFallbacks.Load()) })
	reg.NewCounterFunc("grbac_sdk_failsafe_denies_total",
		"Synthesized denies when neither local nor remote mediation was possible.",
		func() float64 { return float64(c.failSafeDenies.Load()) })
	reg.NewCounterFunc("grbac_sdk_stale_served_total",
		"Local decisions served past the staleness bound under FallbackServeStale.",
		func() float64 { return float64(c.staleServed.Load()) })
	reg.NewGaugeFunc("grbac_sdk_policy_generation",
		"Local policy generation (the primary's generation as of the last sync).",
		func() float64 { return float64(c.sys.Generation()) })
	if c.shardRouting {
		reg.NewGaugeFunc("grbac_sdk_shard_map_version",
			"Version of the installed shard map (advances as the watcher applies rebalance commits).",
			func() float64 {
				if m := c.ShardMap(); m != nil {
					return float64(m.Version())
				}
				return 0
			})
	}
	c.puller.RegisterMetrics(reg)
}
