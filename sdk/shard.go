package sdk

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	grbac "github.com/aware-home/grbac"
	"github.com/aware-home/grbac/internal/pdp"
	"github.com/aware-home/grbac/internal/shard"
)

// Shard-aware routing state. The map and the per-shard client table
// live together in one immutable shardView behind an atomic pointer:
// every request captures the view once, so a concurrent map swap (a
// rebalance commit pushed through the watch) can never tear the map
// away from the clients built for it. A background watcher long-polls
// the router's /v1/shard/map/watch and installs newer maps atomically;
// a 421 redirect from a shard that just handed a subject off is
// followed once without waiting for the watch to catch up.

// shardView pairs a shard map with the client table built for exactly
// that map. Immutable once installed.
type shardView struct {
	m       *shard.Map
	clients map[string]*pdp.Client
}

// sdkMapWatchWait is how long one SDK map watch parks on the router.
// The router wakes parked watches on every map commit, so this bounds
// only the idle re-poll cadence, not convergence latency.
const sdkMapWatchWait = 20 * time.Second

// newShardClient builds the per-shard remote used for direct routing.
func (c *Client) newShardClient(addr string) *pdp.Client {
	return pdp.NewClient(addr, c.httpClient, pdp.WithRetry(3, 100*time.Millisecond))
}

// installShardMap swaps in a strictly newer shard map, rebuilding the
// client table but reusing clients whose shard address is unchanged so
// a map bump does not drop warm connection pools. Returns whether the
// map was installed.
func (c *Client) installShardMap(m *shard.Map) bool {
	c.shardMu.Lock()
	defer c.shardMu.Unlock()
	prev := c.shardView.Load()
	if prev != nil && m.Version() <= prev.m.Version() {
		return false
	}
	clients := make(map[string]*pdp.Client, m.Len())
	for _, s := range m.Shards() {
		if prev != nil {
			if old, ok := prev.m.Get(s.ID); ok && old.Addr == s.Addr {
				clients[s.ID] = prev.clients[s.ID]
				continue
			}
		}
		clients[s.ID] = c.newShardClient(s.Addr)
	}
	c.shardView.Store(&shardView{m: m, clients: clients})
	return true
}

// bootstrapShardMap fetches the routing tier's shard map, installs the
// initial view, and resolves the home shard this Client will replicate
// from.
func (c *Client) bootstrapShardMap(ctx context.Context, routerURL string) (shard.Info, error) {
	mctx := ctx
	if c.bootstrapTimeout > 0 {
		var cancel context.CancelFunc
		mctx, cancel = context.WithTimeout(ctx, c.bootstrapTimeout)
		defer cancel()
	}
	c.router = pdp.NewClient(routerURL, c.httpClient)
	var w shard.Wire
	if err := c.router.Call(mctx, http.MethodGet, pdp.ShardMapPath, nil, &w); err != nil {
		return shard.Info{}, fmt.Errorf("sdk: fetch shard map from %s: %w", routerURL, err)
	}
	m, err := shard.FromWire(w)
	if err != nil {
		return shard.Info{}, fmt.Errorf("sdk: shard map from %s: %w", routerURL, err)
	}
	c.installShardMap(m)
	if c.homeShard == "" {
		c.homeShard = m.Shards()[0].ID
	}
	home, ok := m.Get(c.homeShard)
	if !ok {
		return shard.Info{}, fmt.Errorf("sdk: home shard %q not in shard map v%d", c.homeShard, m.Version())
	}
	return home, nil
}

// watchShardMap is the background map watcher: it long-polls the
// router for a map newer than the installed one and swaps the view the
// moment a rebalance commits. Transient router failures back off and
// re-poll; the loop exits with ctx.
func (c *Client) watchShardMap(ctx context.Context) {
	backoff := 100 * time.Millisecond
	const maxBackoff = 5 * time.Second
	for ctx.Err() == nil {
		after := c.shardView.Load().m.Version()
		path := pdp.ShardMapWatchPath + "?after=" + strconv.FormatUint(after, 10) +
			"&wait=" + sdkMapWatchWait.String()
		wctx, cancel := context.WithTimeout(ctx, sdkMapWatchWait+10*time.Second)
		var w shard.Wire
		err := c.router.Call(wctx, http.MethodGet, path, nil, &w)
		cancel()
		if err == nil {
			if m, merr := shard.FromWire(w); merr == nil {
				if c.installShardMap(m) {
					c.logger.Printf("sdk: shard map v%d installed (%d shards)", m.Version(), m.Len())
				}
				backoff = 100 * time.Millisecond
				continue
			} else {
				err = merr
			}
		}
		if ctx.Err() != nil {
			return
		}
		c.logger.Printf("sdk: shard map watch: %v (retrying in %s)", err, backoff)
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// ShardMap returns the currently installed shard map (nil without
// WithShardRouting). The map advances as the watcher applies rebalance
// commits pushed by the router.
func (c *Client) ShardMap() *shard.Map {
	if v := c.shardView.Load(); v != nil {
		return v.m
	}
	return nil
}

// locallyOwned reports whether the replicated snapshot covers the
// request's subject. Without shard routing every subject is local; with
// it, only the home shard's partition is — a foreign subject evaluated
// locally would be indistinguishable from an unknown one. A rebalance
// that moves a subject off the home shard flips this answer the moment
// the watcher installs the committed map.
func (c *Client) locallyOwned(req grbac.Request) bool {
	v := c.shardView.Load()
	if v == nil {
		return true
	}
	return v.m.Owner(string(req.Subject)).ID == c.homeShard
}

// remoteClientFor resolves which remote PDP serves the wire request and
// rewrites shard-qualified session IDs to their shard-local form. Without
// a shard map (or for anything it cannot place) the configured remote —
// the primary, or the router in sharded mode — is the answer.
func (c *Client) remoteClientFor(req *pdp.DecideRequest) *pdp.Client {
	v := c.shardView.Load()
	if c.noRemote || v == nil {
		return c.remote
	}
	if req.Session != "" {
		if shardID, local, ok := shard.SplitSession(req.Session); ok {
			if cl := v.clients[shardID]; cl != nil {
				req.Session = local
				return cl
			}
		}
		return c.remote
	}
	if req.Subject != "" {
		if cl := v.clients[v.m.Owner(req.Subject).ID]; cl != nil {
			return cl
		}
	}
	return c.remote
}

// movedClient inspects a shard-direct call's error for the typed 421
// handoff redirect and, when present, resolves a client for the
// subject's new owner — from the installed view when it already knows
// the address, otherwise a fresh client straight to the redirect
// target. The map itself converges via the watcher (the router commits
// before old owners start redirecting), so the redirect is followed
// without blocking on a map fetch.
func (c *Client) movedClient(err error) (*pdp.Client, bool) {
	var re *pdp.RemoteError
	if !errors.As(err, &re) || re.Status != http.StatusMisdirectedRequest || re.Moved == nil {
		return nil, false
	}
	if v := c.shardView.Load(); v != nil {
		if s, ok := v.m.Get(re.Moved.Shard); ok && s.Addr == re.Moved.Addr {
			if cl := v.clients[re.Moved.Shard]; cl != nil {
				return cl, true
			}
		}
	}
	return c.newShardClient(re.Moved.Addr), true
}
