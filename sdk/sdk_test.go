package sdk

import (
	"context"
	"errors"
	"io"
	"log"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	grbac "github.com/aware-home/grbac"
	"github.com/aware-home/grbac/internal/audit"
	"github.com/aware-home/grbac/internal/core"
	"github.com/aware-home/grbac/internal/faults"
	"github.com/aware-home/grbac/internal/obs"
	"github.com/aware-home/grbac/internal/pdp"
	"github.com/aware-home/grbac/internal/policy"
	"github.com/aware-home/grbac/internal/replica"
)

const testPolicy = `
subject role family-member;
subject role child extends family-member;
object role entertainment-devices;
env role weekday-free-time;
subject alice is child;
object tv is entertainment-devices;
transaction use;
grant child use entertainment-devices when weekday-free-time;
`

var quiet = log.New(io.Discard, "", 0)

// permitReq is the locally-evaluable request the test policy permits.
func permitReq() grbac.Request {
	return grbac.Request{
		Subject: "alice", Object: "tv", Transaction: "use",
		Environment: []grbac.RoleID{"weekday-free-time"},
	}
}

// denyGrant is the permission that flips permitReq to deny under
// deny-overrides.
func denyGrant() grbac.Permission {
	return grbac.Permission{
		Subject: "child", Object: "entertainment-devices",
		Environment: "weekday-free-time", Transaction: "use",
		Effect: grbac.Deny,
	}
}

// newPrimary boots a PDP primary with the test policy and a replication
// feed, returning its system and base URL.
func newPrimary(t testing.TB) (*grbac.System, *httptest.Server) {
	t.Helper()
	compiled, err := policy.Compile(testPolicy)
	if err != nil {
		t.Fatal(err)
	}
	sys := core.NewSystem()
	if err := compiled.Apply(sys, nil); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(pdp.NewServer(sys,
		pdp.WithReplicaSource(replica.NewSource(sys)),
		pdp.WithWatchMaxWait(50*time.Millisecond)))
	t.Cleanup(srv.Close)
	return sys, srv
}

// newEmbedded builds an embedded client against the primary with fast
// test tuning.
func newEmbedded(t testing.TB, url string, opts ...Option) *Client {
	t.Helper()
	opts = append([]Option{
		WithLogger(quiet),
		WithPullerOptions(
			replica.WithBackoff(time.Millisecond, 10*time.Millisecond),
			replica.WithWatchTimeout(time.Second)),
	}, opts...)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := New(ctx, url, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestLocalDecideAfterBootstrap(t *testing.T) {
	_, srv := newPrimary(t)
	c := newEmbedded(t, srv.URL)

	d, err := c.Decide(context.Background(), permitReq())
	if err != nil {
		t.Fatal(err)
	}
	if !d.Allowed || d.Source != SourceLocal || d.Stale {
		t.Fatalf("decision = %+v, want fresh local permit", d)
	}
	ok, err := c.CheckAccess(context.Background(), permitReq())
	if err != nil || !ok {
		t.Fatalf("CheckAccess = %v, %v; want permit", ok, err)
	}
	st := c.Stats()
	if st.LocalDecisions != 2 || st.RemoteFallbacks != 0 {
		t.Fatalf("stats = %+v, want 2 local, 0 remote", st)
	}
	if st.Generation == 0 || st.Replication.Syncs == 0 {
		t.Fatalf("stats = %+v, want synced replication state", st)
	}
}

// TestWatchInvalidationFlipsDecision is the push-invalidation contract:
// a mutation on the primary must reach the embedded node's next decision
// through the watch feed — the test waits on the policy-change signal,
// never on a polling sleep.
func TestWatchInvalidationFlipsDecision(t *testing.T) {
	primary, srv := newPrimary(t)
	c := newEmbedded(t, srv.URL)

	if ok, err := c.CheckAccess(context.Background(), permitReq()); err != nil || !ok {
		t.Fatalf("pre-mutation CheckAccess = %v, %v; want permit", ok, err)
	}

	// Arm the signal before mutating so the edge cannot be missed.
	ch := c.PolicyChanged()
	if err := primary.Grant(denyGrant()); err != nil {
		t.Fatal(err)
	}

	deadline := time.After(10 * time.Second)
	for {
		select {
		case <-ch:
		case <-deadline:
			t.Fatalf("mutation never reached the embedded node; stats %+v", c.Stats())
		}
		d, err := c.Decide(context.Background(), permitReq())
		if err != nil {
			t.Fatal(err)
		}
		if !d.Allowed {
			if d.Source != SourceLocal {
				t.Fatalf("flipped decision came from %s, want local", d.Source)
			}
			return
		}
		// The generation moved but our mutation hasn't applied yet
		// (e.g. an intermediate sync); re-arm and keep waiting.
		ch = c.PolicyChanged()
	}
}

// TestRemoteFallbackForPrimaryOnlyFlows: session-scoped requests and nil
// environments depend on state that never replicates (sessions, live
// sensors), so they must route to the primary even with a fresh snapshot.
func TestRemoteFallbackForPrimaryOnlyFlows(t *testing.T) {
	primary, srv := newPrimary(t)
	c := newEmbedded(t, srv.URL)

	// Nil environment: the primary resolves its own (absent) environment
	// source; the point is the routing, not the outcome.
	req := permitReq()
	req.Environment = nil
	d, err := c.Decide(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if d.Source != SourceRemote {
		t.Fatalf("nil-environment decision came from %s, want remote", d.Source)
	}

	// Session-scoped: the session exists only on the primary. A local
	// attempt would fail ErrNoSession; the remote path must answer.
	sess, err := primary.CreateSession("alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := primary.ActivateRole(sess, "child"); err != nil {
		t.Fatal(err)
	}
	sreq := permitReq()
	sreq.Session = sess
	d, err = c.Decide(context.Background(), sreq)
	if err != nil {
		t.Fatal(err)
	}
	if d.Source != SourceRemote || !d.Allowed {
		t.Fatalf("session decision = %+v, want remote permit", d)
	}
	if st := c.Stats(); st.RemoteFallbacks != 2 {
		t.Fatalf("remote fallbacks = %d, want 2", st.RemoteFallbacks)
	}
}

// TestRemoteErrorsPropagateWhenDefinitive: the primary's considered 4xx
// rejection is the caller's error and must surface as one; it is not a
// degradation the SDK may paper over with a fail-safe deny.
func TestRemoteErrorsPropagateWhenDefinitive(t *testing.T) {
	_, srv := newPrimary(t)
	c := newEmbedded(t, srv.URL)

	req := grbac.Request{Subject: "nobody", Object: "tv", Transaction: "use"}
	_, err := c.Decide(context.Background(), req)
	if err == nil || !errors.Is(err, pdp.ErrRemote) {
		t.Fatalf("unknown-subject decide err = %v, want remote 4xx", err)
	}
	if st := c.Stats(); st.FailSafeDenies != 0 {
		t.Fatalf("definitive rejection counted as fail-safe: %+v", st)
	}
}

// TestOfflineFailSafeDeny: with no remote fallback, flows the snapshot
// cannot evaluate fail closed, and the denial is audited with a reason
// that names the degradation.
func TestOfflineFailSafeDeny(t *testing.T) {
	_, srv := newPrimary(t)
	trail := audit.NewLogger()
	c := newEmbedded(t, srv.URL, WithoutRemote(), WithAudit(trail))

	req := permitReq()
	req.Environment = nil // sensor-dependent: not locally evaluable
	d, err := c.Decide(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if d.Allowed || d.Source != SourceFailSafe || !d.DefaultDeny || !d.Stale {
		t.Fatalf("offline decision = %+v, want fail-safe deny", d)
	}
	if !strings.Contains(d.Reason, "fail-safe") {
		t.Fatalf("reason %q does not name the fail-safe", d.Reason)
	}
	if st := c.Stats(); st.FailSafeDenies != 1 {
		t.Fatalf("fail-safe denies = %d, want 1", st.FailSafeDenies)
	}
	recs := trail.Records()
	if len(recs) != 1 || !strings.Contains(recs[0].Reason, "fail-safe") {
		t.Fatalf("audit trail = %+v, want one fail-safe record", recs)
	}
}

// localSource is an in-process replication transport over replica.Source,
// with a switchable failure mode to simulate a partitioned primary.
type localSource struct {
	mu   sync.Mutex
	src  *replica.Source
	fail error
}

func (l *localSource) setFail(err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.fail = err
}

func (l *localSource) current() (*replica.Source, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.src, l.fail
}

func (l *localSource) Snapshot(ctx context.Context) (replica.Snapshot, error) {
	src, fail := l.current()
	if fail != nil {
		return replica.Snapshot{}, fail
	}
	return src.Snapshot(), nil
}

func (l *localSource) Watch(ctx context.Context, epoch string, after uint64) (replica.WatchResponse, error) {
	src, fail := l.current()
	if fail != nil {
		return replica.WatchResponse{}, fail
	}
	wctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	gen := src.Wait(wctx, epoch, after)
	return replica.WatchResponse{Epoch: src.Epoch(), Generation: gen}, nil
}

// compileSystem builds a local primary system from the test policy.
func compileSystem(t testing.TB) *core.System {
	t.Helper()
	compiled, err := policy.Compile(testPolicy)
	if err != nil {
		t.Fatal(err)
	}
	sys := core.NewSystem()
	if err := compiled.Apply(sys, nil); err != nil {
		t.Fatal(err)
	}
	return sys
}

// staleClient builds an embedded client over an in-process feed, then
// partitions it from the primary and advances a fake clock past the
// staleness bound, returning the stale client.
func staleClient(t *testing.T, opts ...Option) *Client {
	t.Helper()
	fetch := &localSource{src: replica.NewSource(compileSystem(t))}
	var offset atomic.Int64
	base := time.Unix(1_700_000_000, 0)
	now := func() time.Time { return base.Add(time.Duration(offset.Load())) }

	opts = append([]Option{
		WithFetcher(fetch),
		WithMaxStaleness(time.Second),
		WithPullerOptions(
			replica.WithBackoff(time.Millisecond, 5*time.Millisecond),
			replica.WithFollowerClock(now)),
	}, opts...)
	c := newEmbedded(t, "", opts...)

	if ok, err := c.CheckAccess(context.Background(), permitReq()); err != nil || !ok {
		t.Fatalf("fresh CheckAccess = %v, %v; want permit", ok, err)
	}
	fetch.setFail(errors.New("partitioned"))
	offset.Store(int64(5 * time.Second))
	if !c.Stale() {
		t.Fatal("client not stale after partition + clock advance")
	}
	return c
}

func TestStaleFallbackDeny(t *testing.T) {
	trail := audit.NewLogger()
	c := staleClient(t, WithFallback(FallbackDeny), WithAudit(trail))

	d, err := c.Decide(context.Background(), permitReq())
	if err != nil {
		t.Fatal(err)
	}
	if d.Allowed || d.Source != SourceFailSafe || !strings.Contains(d.Reason, "stale") {
		t.Fatalf("stale decision = %+v, want fail-safe deny naming staleness", d)
	}
	if len(trail.Records()) != 1 {
		t.Fatalf("audit records = %d, want 1", len(trail.Records()))
	}
	// The boolean path degrades identically.
	ok, err := c.CheckAccess(context.Background(), permitReq())
	if err != nil || ok {
		t.Fatalf("stale CheckAccess = %v, %v; want deny", ok, err)
	}
}

func TestStaleFallbackServeStale(t *testing.T) {
	trail := audit.NewLogger()
	c := staleClient(t, WithFallback(FallbackServeStale), WithAudit(trail))

	d, err := c.Decide(context.Background(), permitReq())
	if err != nil {
		t.Fatal(err)
	}
	if !d.Allowed || !d.Stale || d.Source != SourceLocal {
		t.Fatalf("stale decision = %+v, want marked-stale local permit", d)
	}
	if !strings.Contains(d.Reason, "stale") {
		t.Fatalf("reason %q does not mark staleness", d.Reason)
	}
	if st := c.Stats(); st.StaleServed != 1 {
		t.Fatalf("stale served = %d, want 1", st.StaleServed)
	}
	if len(trail.Records()) != 1 {
		t.Fatalf("audit records = %d, want 1", len(trail.Records()))
	}
}

func TestStaleFallbackRemoteWithoutRemoteFailsSafe(t *testing.T) {
	// FallbackRemote (the default), but the client was built with no
	// primary URL: the remote leg is missing, so stale degrades to deny.
	c := staleClient(t)
	d, err := c.Decide(context.Background(), permitReq())
	if err != nil {
		t.Fatal(err)
	}
	if d.Allowed || d.Source != SourceFailSafe {
		t.Fatalf("stale decision = %+v, want fail-safe deny", d)
	}
}

// TestFaultInjectedFallbackFailsSafe: the chaos hook on the remote leg
// turns fallback attempts into fail-safe denies.
func TestFaultInjectedFallbackFailsSafe(t *testing.T) {
	_, srv := newPrimary(t)
	c := newEmbedded(t, srv.URL)

	plan := faults.NewPlan(1, faults.Rule{
		Point:  faults.SDKFallback,
		Action: faults.Action{Err: errors.New("injected outage")},
	})
	faults.Activate(plan)
	defer faults.Deactivate()

	req := permitReq()
	req.Environment = nil // forces the remote leg
	d, err := c.Decide(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if d.Allowed || d.Source != SourceFailSafe || !strings.Contains(d.Reason, "injected outage") {
		t.Fatalf("injected-fault decision = %+v, want fail-safe deny", d)
	}
	// Local mediation is untouched by the remote-leg fault.
	if ok, err := c.CheckAccess(context.Background(), permitReq()); err != nil || !ok {
		t.Fatalf("local CheckAccess under fault = %v, %v; want permit", ok, err)
	}
}

func TestDecideBatchPartitionsLocalAndRemote(t *testing.T) {
	primary, srv := newPrimary(t)
	c := newEmbedded(t, srv.URL)

	sess, err := primary.CreateSession("alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := primary.ActivateRole(sess, "child"); err != nil {
		t.Fatal(err)
	}

	nilEnv := permitReq()
	nilEnv.Environment = nil
	sessReq := permitReq()
	sessReq.Session = sess
	reqs := []grbac.Request{permitReq(), nilEnv, permitReq(), sessReq}

	out := c.DecideBatch(context.Background(), reqs)
	if len(out) != 4 {
		t.Fatalf("batch returned %d results, want 4", len(out))
	}
	wantSource := []Source{SourceLocal, SourceRemote, SourceLocal, SourceRemote}
	// The nil-environment item denies: the primary has no environment
	// source, so no environment roles are active and the grant's
	// weekday-free-time condition cannot hold. The routing is the point.
	wantAllowed := []bool{true, false, true, true}
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("result %d: %v", i, r.Err)
		}
		if r.Decision.Source != wantSource[i] {
			t.Fatalf("result %d source = %s, want %s", i, r.Decision.Source, wantSource[i])
		}
		if r.Decision.Allowed != wantAllowed[i] {
			t.Fatalf("result %d = %+v, want allowed=%v", i, r.Decision, wantAllowed[i])
		}
	}
	st := c.Stats()
	if st.LocalDecisions != 2 || st.RemoteFallbacks != 2 {
		t.Fatalf("stats = %+v, want 2 local + 2 remote", st)
	}
}

// TestConcurrentReplaceDuringDecideBatch is the snapshot-consistency
// regression test for the SDK path: while the puller applies wholesale
// core.Replace swaps (full snapshot syncs), in-flight DecideBatch calls
// must answer every item in one batch against one policy version — the
// toggled permission may flip between batches, never within one. Run
// under -race this also proves the swap itself is safe.
func TestConcurrentReplaceDuringDecideBatch(t *testing.T) {
	primary := compileSystem(t)
	fetch := &localSource{src: replica.NewSource(primary)}
	c := newEmbedded(t, "", WithFetcher(fetch))

	stop := make(chan struct{})
	var flips atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		deny := denyGrant()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := primary.Grant(deny); err != nil {
				t.Error(err)
				return
			}
			if err := primary.Revoke(deny); err != nil {
				t.Error(err)
				return
			}
			flips.Add(1)
		}
	}()

	const batchSize = 16
	reqs := make([]grbac.Request, batchSize)
	for i := range reqs {
		reqs[i] = permitReq()
	}
	deadline := time.Now().Add(2 * time.Second)
	batches := 0
	for time.Now().Before(deadline) {
		out := c.DecideBatch(context.Background(), reqs)
		first := out[0].Decision.Allowed
		for i, r := range out {
			if r.Err != nil {
				t.Fatalf("batch %d item %d: %v", batches, i, r.Err)
			}
			if r.Decision.Allowed != first {
				t.Fatalf("batch %d split mid-flight: item 0 allowed=%v, item %d allowed=%v",
					batches, first, i, r.Decision.Allowed)
			}
		}
		batches++
	}
	close(stop)
	wg.Wait()
	if batches == 0 || flips.Load() == 0 {
		t.Fatalf("no overlap exercised: %d batches, %d flips", batches, flips.Load())
	}
}

// TestRegisterMetrics: the SDK's series and the puller's series land on
// one registry and scrape with live values.
func TestRegisterMetrics(t *testing.T) {
	_, srv := newPrimary(t)
	c := newEmbedded(t, srv.URL)
	if _, err := c.Decide(context.Background(), permitReq()); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	c.RegisterMetrics(reg)
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"grbac_sdk_local_decisions_total 1",
		"grbac_sdk_policy_generation",
		"grbac_replica_syncs_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, text)
		}
	}
}

// TestOfflineStartFailsClosedUntilSynced: WithOfflineStart returns a
// client before the first snapshot; until sync it must not answer from
// the empty local policy as if it were real.
func TestOfflineStartFailsClosedUntilSynced(t *testing.T) {
	fetch := &localSource{}
	fetch.setFail(errors.New("primary down"))
	c := newEmbedded(t, "", WithOfflineStart(), WithFetcher(fetch))

	d, err := c.Decide(context.Background(), permitReq())
	if err != nil {
		t.Fatal(err)
	}
	if d.Allowed || d.Source != SourceFailSafe {
		t.Fatalf("unsynced decision = %+v, want fail-safe deny", d)
	}

	// The primary comes up; the client converges and serves locally.
	fetch.mu.Lock()
	fetch.src = replica.NewSource(compileSystem(t))
	fetch.fail = nil
	fetch.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Synced(ctx); err != nil {
		t.Fatal(err)
	}
	d, err = c.Decide(context.Background(), permitReq())
	if err != nil {
		t.Fatal(err)
	}
	if !d.Allowed || d.Source != SourceLocal {
		t.Fatalf("post-sync decision = %+v, want local permit", d)
	}
}
