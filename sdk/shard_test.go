package sdk

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	grbac "github.com/aware-home/grbac"
	"github.com/aware-home/grbac/internal/core"
	"github.com/aware-home/grbac/internal/pdp"
	"github.com/aware-home/grbac/internal/policy"
	"github.com/aware-home/grbac/internal/replica"
	"github.com/aware-home/grbac/internal/shard"
)

// shardedPolicy omits the subject bindings: subjects are partitioned
// across shards by the router, the rest is replicated everywhere.
const shardedPolicy = `
subject role family-member;
subject role child extends family-member;
object role entertainment-devices;
env role weekday-free-time;
object tv is entertainment-devices;
transaction use;
grant child use entertainment-devices when weekday-free-time;
`

// newShardedCluster boots n shards (admin + replication feed enabled, so
// an SDK can pull policy from any of them) behind a router, registers
// subjects through it, and returns the router's URL with the shard map.
func newShardedCluster(t *testing.T, n, subjects int) (string, *shard.Map, []string) {
	t.Helper()
	compiled, err := policy.Compile(shardedPolicy)
	if err != nil {
		t.Fatal(err)
	}
	infos := make([]shard.Info, n)
	for i := 0; i < n; i++ {
		sys := core.NewSystem()
		if err := compiled.Apply(sys, nil); err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(pdp.NewServer(sys,
			pdp.WithAdmin(),
			pdp.WithReplicaSource(replica.NewSource(sys))))
		t.Cleanup(srv.Close)
		infos[i] = shard.Info{ID: fmt.Sprintf("s%d", i), Addr: srv.URL}
	}
	m, err := shard.New(0, infos...)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := pdp.NewRouter(m)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)

	router := pdp.NewClient(front.URL, nil)
	subs := make([]string, subjects)
	for i := range subs {
		subs[i] = fmt.Sprintf("member-%03d", i)
		if err := router.UpsertSubject(context.Background(),
			pdp.BindingRequest{ID: subs[i], Roles: []string{"child"}}); err != nil {
			t.Fatal(err)
		}
	}
	return front.URL, m, subs
}

func shardPermitReq(sub string) grbac.Request {
	return grbac.Request{
		Subject: grbac.SubjectID(sub), Object: "tv", Transaction: "use",
		Environment: []grbac.RoleID{"weekday-free-time"},
	}
}

// TestSDKShardRouting pins the client-side shard map: the SDK bootstraps
// from the router, replicates its home shard's partition, answers home
// subjects locally, and routes foreign subjects straight to their owning
// shard — every decision correct either way.
func TestSDKShardRouting(t *testing.T) {
	routerURL, m, subs := newShardedCluster(t, 3, 24)
	c := newEmbedded(t, routerURL, WithShardRouting(""))
	ctx := context.Background()

	if c.ShardMap() == nil || c.ShardMap().Len() != 3 {
		t.Fatalf("ShardMap = %v, want the router's 3-shard map", c.ShardMap())
	}
	home := c.homeShard
	if _, ok := m.Get(home); !ok {
		t.Fatalf("home shard %q not in map", home)
	}

	var locals, remotes int
	for _, sub := range subs {
		d, err := c.Decide(ctx, shardPermitReq(sub))
		if err != nil {
			t.Fatalf("Decide(%s): %v", sub, err)
		}
		if !d.Allowed {
			t.Fatalf("Decide(%s) denied: %+v", sub, d)
		}
		wantSource := SourceRemote
		if m.Owner(sub).ID == home {
			wantSource = SourceLocal
		}
		if d.Source != wantSource {
			t.Fatalf("Decide(%s) source = %s, want %s (owner %s, home %s)",
				sub, d.Source, wantSource, m.Owner(sub).ID, home)
		}
		if d.Source == SourceLocal {
			locals++
		} else {
			remotes++
		}
	}
	if locals == 0 || remotes == 0 {
		t.Fatalf("locals=%d remotes=%d — test must exercise both paths", locals, remotes)
	}

	st := c.Stats()
	if st.LocalDecisions != uint64(locals) || st.RemoteFallbacks != uint64(remotes) {
		t.Fatalf("stats = %d local / %d remote, want %d / %d",
			st.LocalDecisions, st.RemoteFallbacks, locals, remotes)
	}
}

// TestSDKShardRoutingBatch pins the batch split: home subjects answer
// from the local snapshot, foreign ones ride per-shard remote batches,
// results stay index-aligned.
func TestSDKShardRoutingBatch(t *testing.T) {
	routerURL, m, subs := newShardedCluster(t, 3, 24)
	c := newEmbedded(t, routerURL, WithShardRouting(""))

	reqs := make([]grbac.Request, len(subs))
	for i, sub := range subs {
		reqs[i] = shardPermitReq(sub)
	}
	out := c.DecideBatch(context.Background(), reqs)
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("batch[%d] (%s): %v", i, subs[i], r.Err)
		}
		if !r.Decision.Allowed {
			t.Fatalf("batch[%d] (%s) denied — merge misaligned?", i, subs[i])
		}
		wantSource := SourceRemote
		if m.Owner(subs[i]).ID == c.homeShard {
			wantSource = SourceLocal
		}
		if r.Decision.Source != wantSource {
			t.Fatalf("batch[%d] (%s) source = %s, want %s", i, subs[i], r.Decision.Source, wantSource)
		}
	}
}

// TestSDKShardRoutingSessions pins direct-to-shard session mediation: a
// session minted by the router carries its shard qualifier, and the SDK
// sends session-scoped requests straight to that shard with the local ID
// restored.
func TestSDKShardRoutingSessions(t *testing.T) {
	routerURL, m, subs := newShardedCluster(t, 3, 8)
	c := newEmbedded(t, routerURL, WithShardRouting(""))
	ctx := context.Background()

	// Pick a subject on a foreign shard so the direct route is the only
	// way the decision can succeed locally-unreplicated state.
	var sub string
	for _, s := range subs {
		if m.Owner(s).ID != c.homeShard {
			sub = s
			break
		}
	}
	router := pdp.NewClient(routerURL, nil)
	sid, err := router.OpenSession(ctx, sub)
	if err != nil {
		t.Fatal(err)
	}
	if err := router.SetSessionRole(ctx, sid, "child", true); err != nil {
		t.Fatal(err)
	}
	req := shardPermitReq(sub)
	req.Session = grbac.SessionID(sid)
	d, err := c.Decide(ctx, req)
	if err != nil {
		t.Fatalf("session decide via SDK: %v", err)
	}
	if !d.Allowed || d.Source != SourceRemote {
		t.Fatalf("session decide = %+v, want remote permit", d)
	}

	// The home shard resolves by ID too: a home subject's session still
	// routes remotely (sessions are never replicated).
	var homeSub string
	for _, s := range subs {
		if m.Owner(s).ID == c.homeShard {
			homeSub = s
			break
		}
	}
	sid2, err := router.OpenSession(ctx, homeSub)
	if err != nil {
		t.Fatal(err)
	}
	if err := router.SetSessionRole(ctx, sid2, "child", true); err != nil {
		t.Fatal(err)
	}
	req2 := shardPermitReq(homeSub)
	req2.Session = grbac.SessionID(sid2)
	d2, err := c.Decide(ctx, req2)
	if err != nil || !d2.Allowed || d2.Source != SourceRemote {
		t.Fatalf("home-shard session decide = %+v, %v; want remote permit", d2, err)
	}
}

// TestSDKShardRoutingHomeShardSelection pins explicit home-shard choice
// and rejection of unknown IDs.
func TestSDKShardRoutingHomeShardSelection(t *testing.T) {
	routerURL, _, _ := newShardedCluster(t, 3, 4)
	c := newEmbedded(t, routerURL, WithShardRouting("s2"))
	if c.homeShard != "s2" {
		t.Fatalf("home shard = %q, want s2", c.homeShard)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5e9)
	defer cancel()
	if _, err := New(ctx, routerURL, WithLogger(quiet), WithShardRouting("nope")); err == nil {
		t.Fatal("unknown home shard must fail bootstrap")
	}
}
