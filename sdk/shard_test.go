package sdk

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	grbac "github.com/aware-home/grbac"
	"github.com/aware-home/grbac/internal/core"
	"github.com/aware-home/grbac/internal/pdp"
	"github.com/aware-home/grbac/internal/policy"
	"github.com/aware-home/grbac/internal/replica"
	"github.com/aware-home/grbac/internal/shard"
)

// shardedPolicy omits the subject bindings: subjects are partitioned
// across shards by the router, the rest is replicated everywhere.
const shardedPolicy = `
subject role family-member;
subject role child extends family-member;
object role entertainment-devices;
env role weekday-free-time;
object tv is entertainment-devices;
transaction use;
grant child use entertainment-devices when weekday-free-time;
`

// shardedCluster is a booted n-shard cluster behind a router, with the
// handles SDK rebalance tests need: the router itself (to commit new
// maps) and a factory for extra shard servers.
type shardedCluster struct {
	front *httptest.Server
	rt    *pdp.Router
	m     *shard.Map
	subs  []string
}

// newShard boots one more shard server (admin + replication feed, same
// policy) and returns its Info, without touching the active map.
func (c *shardedCluster) newShard(t *testing.T, id string) shard.Info {
	t.Helper()
	compiled, err := policy.Compile(shardedPolicy)
	if err != nil {
		t.Fatal(err)
	}
	sys := core.NewSystem()
	if err := compiled.Apply(sys, nil); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(pdp.NewServer(sys,
		pdp.WithAdmin(),
		pdp.WithReplicaSource(replica.NewSource(sys))))
	t.Cleanup(srv.Close)
	return shard.Info{ID: id, Addr: srv.URL}
}

// bootShardedCluster boots n shards (admin + replication feed enabled,
// so an SDK can pull policy from any of them) behind a router and
// registers subjects through it.
func bootShardedCluster(t *testing.T, n, subjects int) *shardedCluster {
	t.Helper()
	c := &shardedCluster{}
	infos := make([]shard.Info, n)
	for i := 0; i < n; i++ {
		infos[i] = c.newShard(t, fmt.Sprintf("s%d", i))
	}
	m, err := shard.New(0, infos...)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := pdp.NewRouter(m)
	if err != nil {
		t.Fatal(err)
	}
	c.rt, c.m = rt, m
	c.front = httptest.NewServer(rt)
	t.Cleanup(c.front.Close)

	router := pdp.NewClient(c.front.URL, nil)
	c.subs = make([]string, subjects)
	for i := range c.subs {
		c.subs[i] = fmt.Sprintf("member-%03d", i)
		if err := router.UpsertSubject(context.Background(),
			pdp.BindingRequest{ID: c.subs[i], Roles: []string{"child"}}); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// newShardedCluster is the URL-shaped convenience wrapper the routing
// tests use.
func newShardedCluster(t *testing.T, n, subjects int) (string, *shard.Map, []string) {
	t.Helper()
	c := bootShardedCluster(t, n, subjects)
	return c.front.URL, c.m, c.subs
}

func shardPermitReq(sub string) grbac.Request {
	return grbac.Request{
		Subject: grbac.SubjectID(sub), Object: "tv", Transaction: "use",
		Environment: []grbac.RoleID{"weekday-free-time"},
	}
}

// TestSDKShardRouting pins the client-side shard map: the SDK bootstraps
// from the router, replicates its home shard's partition, answers home
// subjects locally, and routes foreign subjects straight to their owning
// shard — every decision correct either way.
func TestSDKShardRouting(t *testing.T) {
	routerURL, m, subs := newShardedCluster(t, 3, 24)
	c := newEmbedded(t, routerURL, WithShardRouting(""))
	ctx := context.Background()

	if c.ShardMap() == nil || c.ShardMap().Len() != 3 {
		t.Fatalf("ShardMap = %v, want the router's 3-shard map", c.ShardMap())
	}
	home := c.homeShard
	if _, ok := m.Get(home); !ok {
		t.Fatalf("home shard %q not in map", home)
	}

	var locals, remotes int
	for _, sub := range subs {
		d, err := c.Decide(ctx, shardPermitReq(sub))
		if err != nil {
			t.Fatalf("Decide(%s): %v", sub, err)
		}
		if !d.Allowed {
			t.Fatalf("Decide(%s) denied: %+v", sub, d)
		}
		wantSource := SourceRemote
		if m.Owner(sub).ID == home {
			wantSource = SourceLocal
		}
		if d.Source != wantSource {
			t.Fatalf("Decide(%s) source = %s, want %s (owner %s, home %s)",
				sub, d.Source, wantSource, m.Owner(sub).ID, home)
		}
		if d.Source == SourceLocal {
			locals++
		} else {
			remotes++
		}
	}
	if locals == 0 || remotes == 0 {
		t.Fatalf("locals=%d remotes=%d — test must exercise both paths", locals, remotes)
	}

	st := c.Stats()
	if st.LocalDecisions != uint64(locals) || st.RemoteFallbacks != uint64(remotes) {
		t.Fatalf("stats = %d local / %d remote, want %d / %d",
			st.LocalDecisions, st.RemoteFallbacks, locals, remotes)
	}
}

// TestSDKShardRoutingBatch pins the batch split: home subjects answer
// from the local snapshot, foreign ones ride per-shard remote batches,
// results stay index-aligned.
func TestSDKShardRoutingBatch(t *testing.T) {
	routerURL, m, subs := newShardedCluster(t, 3, 24)
	c := newEmbedded(t, routerURL, WithShardRouting(""))

	reqs := make([]grbac.Request, len(subs))
	for i, sub := range subs {
		reqs[i] = shardPermitReq(sub)
	}
	out := c.DecideBatch(context.Background(), reqs)
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("batch[%d] (%s): %v", i, subs[i], r.Err)
		}
		if !r.Decision.Allowed {
			t.Fatalf("batch[%d] (%s) denied — merge misaligned?", i, subs[i])
		}
		wantSource := SourceRemote
		if m.Owner(subs[i]).ID == c.homeShard {
			wantSource = SourceLocal
		}
		if r.Decision.Source != wantSource {
			t.Fatalf("batch[%d] (%s) source = %s, want %s", i, subs[i], r.Decision.Source, wantSource)
		}
	}
}

// TestSDKShardRoutingSessions pins direct-to-shard session mediation: a
// session minted by the router carries its shard qualifier, and the SDK
// sends session-scoped requests straight to that shard with the local ID
// restored.
func TestSDKShardRoutingSessions(t *testing.T) {
	routerURL, m, subs := newShardedCluster(t, 3, 8)
	c := newEmbedded(t, routerURL, WithShardRouting(""))
	ctx := context.Background()

	// Pick a subject on a foreign shard so the direct route is the only
	// way the decision can succeed locally-unreplicated state.
	var sub string
	for _, s := range subs {
		if m.Owner(s).ID != c.homeShard {
			sub = s
			break
		}
	}
	router := pdp.NewClient(routerURL, nil)
	sid, err := router.OpenSession(ctx, sub)
	if err != nil {
		t.Fatal(err)
	}
	if err := router.SetSessionRole(ctx, sid, "child", true); err != nil {
		t.Fatal(err)
	}
	req := shardPermitReq(sub)
	req.Session = grbac.SessionID(sid)
	d, err := c.Decide(ctx, req)
	if err != nil {
		t.Fatalf("session decide via SDK: %v", err)
	}
	if !d.Allowed || d.Source != SourceRemote {
		t.Fatalf("session decide = %+v, want remote permit", d)
	}

	// The home shard resolves by ID too: a home subject's session still
	// routes remotely (sessions are never replicated).
	var homeSub string
	for _, s := range subs {
		if m.Owner(s).ID == c.homeShard {
			homeSub = s
			break
		}
	}
	sid2, err := router.OpenSession(ctx, homeSub)
	if err != nil {
		t.Fatal(err)
	}
	if err := router.SetSessionRole(ctx, sid2, "child", true); err != nil {
		t.Fatal(err)
	}
	req2 := shardPermitReq(homeSub)
	req2.Session = grbac.SessionID(sid2)
	d2, err := c.Decide(ctx, req2)
	if err != nil || !d2.Allowed || d2.Source != SourceRemote {
		t.Fatalf("home-shard session decide = %+v, %v; want remote permit", d2, err)
	}
}

// TestSDKShardMapWatchConvergence is the SDK half of the rebalance
// tentpole: a coordinator grows the cluster by one shard, the router
// commits the new map, and the embedded client — riding the map watch
// long-poll — flips atomically to the committed map and keeps every
// decision correct under the new ownership, home and foreign alike.
func TestSDKShardMapWatchConvergence(t *testing.T) {
	cl := bootShardedCluster(t, 2, 24)
	c := newEmbedded(t, cl.front.URL, WithShardRouting("s0"))
	ctx := context.Background()

	// Pre-rebalance sweep: every subject decided correctly.
	for _, sub := range cl.subs {
		if d, err := c.Decide(ctx, shardPermitReq(sub)); err != nil || !d.Allowed {
			t.Fatalf("pre-rebalance Decide(%s) = %+v, %v", sub, d, err)
		}
	}

	// Grow the cluster: coordinator migrates subjects to a third shard
	// and commits the new map on the router.
	coord := shard.NewCoordinator(filepath.Join(t.TempDir(), "rebalance.journal"),
		func(info shard.Info) shard.NodeClient { return pdp.NewMigrationNode(info.Addr) },
		func(_ context.Context, m *shard.Map) error { return cl.rt.SetMap(m) },
		t.Logf)
	next, err := coord.AddShard(ctx, cl.rt.Map(), cl.newShard(t, "s2"))
	if err != nil {
		t.Fatalf("AddShard: %v", err)
	}

	// The watcher must install the committed map without any SDK-side
	// polling knob: the router wakes the parked long-poll on commit.
	deadline := time.Now().Add(5 * time.Second)
	for c.ShardMap().Version() != next.Version() {
		if time.Now().After(deadline) {
			t.Fatalf("SDK map version = %d, want %d (watch never converged)",
				c.ShardMap().Version(), next.Version())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Post-rebalance sweep: decisions follow the new ownership — moved
	// home subjects now route remotely, everything still permits.
	var locals, remotes int
	for _, sub := range cl.subs {
		d, err := c.Decide(ctx, shardPermitReq(sub))
		if err != nil || !d.Allowed {
			t.Fatalf("post-rebalance Decide(%s) = %+v, %v", sub, d, err)
		}
		wantSource := SourceRemote
		if next.Owner(sub).ID == c.homeShard {
			wantSource = SourceLocal
		}
		if d.Source != wantSource {
			t.Fatalf("post-rebalance Decide(%s) source = %s, want %s (owner %s)",
				sub, d.Source, wantSource, next.Owner(sub).ID)
		}
		if d.Source == SourceLocal {
			locals++
		} else {
			remotes++
		}
	}
	if locals == 0 || remotes == 0 {
		t.Fatalf("locals=%d remotes=%d — post-rebalance sweep must exercise both paths", locals, remotes)
	}
}

// TestSDKFollowsMovedRedirect pins the 421 handoff path: a subject
// migrates to a shard the SDK's installed map has never heard of (the
// router map is deliberately left stale, so the watch cannot help), and
// a shard-direct decide still succeeds by following the typed redirect
// once.
func TestSDKFollowsMovedRedirect(t *testing.T) {
	cl := bootShardedCluster(t, 2, 8)
	c := newEmbedded(t, cl.front.URL, WithShardRouting("s0"))
	ctx := context.Background()

	// A foreign subject, so the SDK routes shard-direct to s1.
	var sub string
	for _, s := range cl.subs {
		if cl.m.Owner(s).ID == "s1" {
			sub = s
			break
		}
	}
	if sub == "" {
		t.Fatal("no subject owned by s1")
	}

	// Migrate it out-of-band to a shard the map does not contain:
	// export → import → handoff → complete, leaving s1 redirecting.
	dest := cl.newShard(t, "x9")
	oldInfo, _ := cl.m.Get("s1")
	old := pdp.NewMigrationNode(oldInfo.Addr)
	dst := pdp.NewMigrationNode(dest.Addr)
	bundle, err := old.ExportSubject(ctx, sub)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	if err := dst.ImportSubject(ctx, bundle); err != nil {
		t.Fatalf("import: %v", err)
	}
	moves := []shard.Move{{Subject: sub, From: oldInfo, To: dest}}
	if err := old.Handoff(ctx, cl.m.Version()+1, moves); err != nil {
		t.Fatalf("handoff: %v", err)
	}
	if err := old.Complete(ctx, cl.m.Version()+1, moves); err != nil {
		t.Fatalf("complete: %v", err)
	}

	d, err := c.Decide(ctx, shardPermitReq(sub))
	if err != nil {
		t.Fatalf("Decide after handoff: %v", err)
	}
	if !d.Allowed || d.Source != SourceRemote {
		t.Fatalf("Decide after handoff = %+v, want remote permit via 421 follow", d)
	}

	// The batch path follows the same redirect.
	out := c.DecideBatch(ctx, []grbac.Request{shardPermitReq(sub)})
	if out[0].Err != nil || !out[0].Decision.Allowed {
		t.Fatalf("batch after handoff = %+v, want permit via 421 follow", out[0])
	}
}

// TestSDKShardRoutingHomeShardSelection pins explicit home-shard choice
// and rejection of unknown IDs.
func TestSDKShardRoutingHomeShardSelection(t *testing.T) {
	routerURL, _, _ := newShardedCluster(t, 3, 4)
	c := newEmbedded(t, routerURL, WithShardRouting("s2"))
	if c.homeShard != "s2" {
		t.Fatalf("home shard = %q, want s2", c.homeShard)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5e9)
	defer cancel()
	if _, err := New(ctx, routerURL, WithLogger(quiet), WithShardRouting("nope")); err == nil {
		t.Fatal("unknown home shard must fail bootstrap")
	}
}
