// Package sdk embeds GRBAC mediation in the application's own process.
//
// The biggest QPS lever in a policy-decision architecture is never
// sending the request: an embedded Client bootstraps from the primary's
// replication snapshot, rides the watch long-poll (delta-first, with
// 410-Gone → full-snapshot fallback) to keep a local copy-on-write
// compiled policy current, and answers Decide/CheckAccess/DecideBatch
// in-process with the same lock-free snapshot and sharded
// generation-stamped decision cache the server uses. A policy mutation on
// the primary bumps the generation, the watch delivers it, and the local
// cache invalidates in O(1) — push-invalidated caching with no polling
// and no TTL guesswork.
//
// Not every flow can be mediated locally. Sessions are ephemeral primary
// state (never replicated), and a request with a nil Environment asks for
// the live sensor-driven environment roles only the primary can see; both
// route to a remote pdp.Client Decide. When the local snapshot goes stale
// past the configured bound the Client degrades per its FallbackMode:
// remote mediation (default), serving marked-stale local answers, or
// fail-safe deny. When the remote is unreachable too, every non-local
// answer is a fail-safe deny with an audited "stale"/"fail-safe" reason —
// an offline SDK fails closed, never open.
//
// A ten-line embedded app:
//
//	client, err := sdk.New(ctx, "http://pdp:8125")
//	if err != nil {
//		log.Fatal(err)
//	}
//	defer client.Close()
//	ok, err := client.CheckAccess(ctx, grbac.Request{
//		Subject: "alice", Object: "tv", Transaction: "use",
//		Environment: []grbac.RoleID{"weekday-free-time"},
//	})
package sdk

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	grbac "github.com/aware-home/grbac"
	"github.com/aware-home/grbac/internal/audit"
	"github.com/aware-home/grbac/internal/bundle"
	"github.com/aware-home/grbac/internal/faults"
	"github.com/aware-home/grbac/internal/pdp"
	"github.com/aware-home/grbac/internal/replica"
)

// Source reports which mediation path produced a Decision.
type Source string

// Mediation paths.
const (
	// SourceLocal is the in-process path: the request was evaluated
	// against the replicated snapshot in the caller's own address space.
	SourceLocal Source = "local"
	// SourceRemote is the fallback path: the request went to the primary
	// over pdp.Client, either because the flow is not locally evaluable
	// (session-scoped, sensor-dependent environment) or because the local
	// snapshot was stale under FallbackRemote.
	SourceRemote Source = "remote"
	// SourceFailSafe marks a synthesized deny: the request could not be
	// mediated locally or remotely, and the SDK failed closed.
	SourceFailSafe Source = "fail-safe"
)

// FallbackMode selects what a Client does with a locally-evaluable
// request when its snapshot is stale beyond the staleness bound.
type FallbackMode int

const (
	// FallbackRemote (the default) routes stale-snapshot requests to the
	// primary; if that fails too, the answer is a fail-safe deny.
	FallbackRemote FallbackMode = iota
	// FallbackServeStale keeps answering from the stale local snapshot,
	// marking each Decision Stale and auditing the staleness, for callers
	// that prefer availability over freshness (the paper's household
	// policies change at human timescales).
	FallbackServeStale
	// FallbackDeny fails closed the moment the snapshot is stale: every
	// locally-evaluable request gets an audited fail-safe deny until the
	// puller re-converges.
	FallbackDeny
)

// Decision is a core decision plus the provenance an embedded caller
// needs: where the answer came from and whether policy staleness was
// involved.
type Decision struct {
	grbac.Decision
	// Stale is true when the answer was produced under a stale local
	// snapshot (FallbackServeStale), synthesized fail-safe, or marked
	// stale by a degraded remote follower.
	Stale bool
	// Source is the mediation path that produced this decision.
	Source Source
}

// BatchResult pairs one batched request's decision with its error,
// index-aligned with the DecideBatch input.
type BatchResult struct {
	Decision Decision
	Err      error
}

// Stats is a point-in-time report of an embedded client's mediation
// traffic and replication health.
type Stats struct {
	// LocalDecisions counts requests answered in-process.
	LocalDecisions uint64 `json:"local_decisions"`
	// RemoteFallbacks counts requests routed to the primary.
	RemoteFallbacks uint64 `json:"remote_fallbacks"`
	// FailSafeDenies counts synthesized denies (no local or remote path).
	FailSafeDenies uint64 `json:"failsafe_denies"`
	// StaleServed counts local answers served past the staleness bound
	// under FallbackServeStale.
	StaleServed uint64 `json:"stale_served"`
	// Generation is the local policy generation (the primary's generation
	// as of the last applied sync).
	Generation uint64 `json:"generation"`
	// Replication is the underlying puller's health.
	Replication replica.Stats `json:"replication"`
	// Core is the local system's decision-cache statistics.
	Core grbac.Stats `json:"core"`
}

// Client is an embedded policy enforcement point. Construct with New,
// Close when done. All methods are safe for concurrent use.
type Client struct {
	sys    *grbac.System
	puller *replica.Puller
	remote *pdp.Client

	fallback   FallbackMode
	bundles    *bundle.Verifier
	auditLog   *audit.Logger
	logger     *log.Logger
	httpClient *http.Client

	bootstrapTimeout time.Duration
	maxStaleness     time.Duration
	offlineStart     bool
	noRemote         bool
	fetcher          replica.Fetcher
	pullerOpts       []replica.PullerOption

	shardRouting bool
	homeShard    string
	router       *pdp.Client
	shardMu      sync.Mutex
	shardView    atomic.Pointer[shardView]

	cancel    context.CancelFunc
	done      chan struct{}
	watchDone chan struct{}

	localDecisions  atomic.Uint64
	remoteFallbacks atomic.Uint64
	failSafeDenies  atomic.Uint64
	staleServed     atomic.Uint64
}

// Option configures a Client under construction.
type Option func(*Client)

// WithHTTPClient substitutes the http.Client used for both the
// replication feed and remote fallback (default http.DefaultClient).
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.httpClient = h }
}

// WithMaxStaleness bounds how old the local snapshot may grow before the
// Client degrades per its FallbackMode (default 30s; d <= 0 disables
// staleness, trusting the local snapshot indefinitely).
func WithMaxStaleness(d time.Duration) Option {
	return func(c *Client) { c.maxStaleness = d }
}

// WithFallback selects the stale-snapshot behavior (default
// FallbackRemote).
func WithFallback(m FallbackMode) Option {
	return func(c *Client) { c.fallback = m }
}

// WithRemote substitutes the remote-fallback PDP client (default: one
// built for the primary URL with retries enabled).
func WithRemote(r *pdp.Client) Option {
	return func(c *Client) { c.remote = r }
}

// WithoutRemote disables remote fallback entirely: flows the local
// snapshot cannot evaluate get a fail-safe deny. This is the air-gapped /
// offline deployment shape.
func WithoutRemote() Option {
	return func(c *Client) { c.noRemote = true }
}

// WithBundleVerifier arms the embedded client's signed-bundle gate:
// ActivateBundle only installs bundles that verify against v's trusted
// key and advance its revision, rejecting unsigned, tampered, and stale
// bundles with the bundle package's typed errors. This is the offline /
// air-gapped policy-update path (compose with WithoutRemote and
// WithOfflineStart); on a replicating client the puller's next sync
// replaces whatever a bundle installed.
func WithBundleVerifier(v *bundle.Verifier) Option {
	return func(c *Client) { c.bundles = v }
}

// WithAudit attaches an audit logger; fail-safe denies and stale-served
// decisions are recorded on it so degraded mediation leaves a trail.
func WithAudit(l *audit.Logger) Option {
	return func(c *Client) { c.auditLog = l }
}

// WithLogger sets the sync loop's logger (default log.Default()).
func WithLogger(l *log.Logger) Option {
	return func(c *Client) { c.logger = l }
}

// WithBootstrapTimeout bounds how long New blocks waiting for the first
// snapshot (default 10s; d <= 0 waits on ctx alone).
func WithBootstrapTimeout(d time.Duration) Option {
	return func(c *Client) { c.bootstrapTimeout = d }
}

// WithOfflineStart lets New return before the first snapshot arrives.
// Until the puller syncs, every request follows the stale path (remote
// fallback or fail-safe deny), so a cold Client fails closed rather than
// answering from an empty default-deny policy as if it were real.
func WithOfflineStart() Option {
	return func(c *Client) { c.offlineStart = true }
}

// WithFetcher substitutes the replication transport (in-process tests).
func WithFetcher(f replica.Fetcher) Option {
	return func(c *Client) { c.fetcher = f }
}

// WithPullerOptions appends extra tuning for the underlying replication
// puller (backoff bounds, timeouts, clock).
func WithPullerOptions(opts ...replica.PullerOption) Option {
	return func(c *Client) { c.pullerOpts = append(c.pullerOpts, opts...) }
}

// WithShardRouting makes the Client shard-aware: primaryURL must point at
// a grbacd -route node, whose shard map New fetches at bootstrap. The
// Client then replicates policy from one "home" shard (homeShard by ID,
// or the map's first shard when empty) and mediates locally only the
// subjects that shard owns; every other subject — and every shard-
// qualified session — is routed remotely straight to its owning shard,
// skipping the router hop. Local decisions on a foreign shard's subject
// would otherwise answer "unknown subject" for subjects that exist
// elsewhere in the cluster.
func WithShardRouting(homeShard string) Option {
	return func(c *Client) {
		c.shardRouting = true
		c.homeShard = homeShard
	}
}

// New builds an embedded client for the primary at primaryURL, starts its
// replication puller, and — unless WithOfflineStart — blocks until the
// first policy snapshot is applied (bounded by WithBootstrapTimeout and
// ctx). The returned Client mediates locally from then on; Close stops
// the puller.
func New(ctx context.Context, primaryURL string, opts ...Option) (*Client, error) {
	c := &Client{
		maxStaleness:     30 * time.Second,
		bootstrapTimeout: 10 * time.Second,
		logger:           log.Default(),
	}
	for _, opt := range opts {
		opt(c)
	}
	// The local system mirrors the server's mediation stack: compiled
	// snapshot, sharded decision cache, deny-overrides — Replace installs
	// the primary's exported policy wholesale on every sync.
	c.sys = grbac.NewSystem()

	feedURL := primaryURL
	if c.shardRouting {
		home, err := c.bootstrapShardMap(ctx, primaryURL)
		if err != nil {
			return nil, err
		}
		// Replicate from the home shard directly: the router holds no
		// policy and serves no replication feed.
		feedURL = home.Addr
	}

	pullerOpts := []replica.PullerOption{
		replica.WithMaxStaleness(c.maxStaleness),
		replica.WithFollowerLogger(c.logger),
	}
	if c.fetcher != nil {
		pullerOpts = append(pullerOpts, replica.WithFetcher(c.fetcher))
	} else if c.httpClient != nil {
		cl := replica.NewClient(feedURL, c.httpClient)
		if c.maxStaleness > 0 {
			cl.MaxWait = c.maxStaleness / 3
			if cl.MaxWait < 100*time.Millisecond {
				cl.MaxWait = 100 * time.Millisecond
			}
		}
		pullerOpts = append(pullerOpts, replica.WithFetcher(cl))
	}
	pullerOpts = append(pullerOpts, c.pullerOpts...)
	c.puller = replica.NewPuller(c.sys, feedURL, pullerOpts...)

	if c.noRemote {
		c.remote = nil
	} else if c.remote == nil && primaryURL != "" {
		c.remote = pdp.NewClient(primaryURL, c.httpClient,
			pdp.WithRetry(3, 100*time.Millisecond))
	}

	runCtx, cancel := context.WithCancel(context.Background())
	c.cancel = cancel
	c.done = make(chan struct{})
	go func() {
		defer close(c.done)
		_ = c.puller.Run(runCtx)
	}()
	if c.shardRouting {
		// Ride the router's map watch so a rebalance commit flips this
		// client's routing atomically — no polling interval to tune, no
		// stale-map window beyond one push.
		c.watchDone = make(chan struct{})
		go func() {
			defer close(c.watchDone)
			c.watchShardMap(runCtx)
		}()
	}

	if !c.offlineStart {
		bctx := ctx
		if c.bootstrapTimeout > 0 {
			var bcancel context.CancelFunc
			bctx, bcancel = context.WithTimeout(ctx, c.bootstrapTimeout)
			defer bcancel()
		}
		if err := c.puller.WaitSynced(bctx); err != nil {
			c.Close()
			return nil, fmt.Errorf("sdk: bootstrap sync from %s: %w", primaryURL, err)
		}
	}
	return c, nil
}

// Close stops the replication puller (and the shard map watcher, if
// any) and waits for them to exit. The local snapshot remains readable,
// but decisions degrade along the stale path as the policy ages.
func (c *Client) Close() {
	c.cancel()
	<-c.done
	if c.watchDone != nil {
		<-c.watchDone
	}
}

// System exposes the local replicated decision engine for read-only use
// (queries, what-if analysis). Do not administer it: every sync replaces
// its policy wholesale.
func (c *Client) System() *grbac.System { return c.sys }

// Generation returns the local policy generation — the primary's
// generation as of the last applied sync.
func (c *Client) Generation() uint64 { return c.sys.Generation() }

// PolicyChanged returns a channel closed at the next local policy change
// (any applied sync or invalidation). Successive calls return the next
// edge; callers loop: wait, re-read, re-call. This is the push signal —
// a primary mutation travels watch → sync → generation bump, no polling.
func (c *Client) PolicyChanged() <-chan struct{} { return c.sys.GenerationChange() }

// Synced blocks until the puller has applied its first snapshot or ctx is
// done; useful after WithOfflineStart.
func (c *Client) Synced(ctx context.Context) error { return c.puller.WaitSynced(ctx) }

// Stale reports whether the local snapshot is past the staleness bound.
func (c *Client) Stale() bool { return c.puller.Stale() }

// localEvaluable reports whether the replicated snapshot alone can answer
// req. Two flows cannot: a session-scoped request (sessions are ephemeral
// primary state, never replicated) and a nil Environment (which asks for
// the live sensor-driven environment roles only the primary's
// EnvironmentSource can resolve — the replicated system has none, so
// answering locally would silently mediate against "no roles active").
func localEvaluable(req grbac.Request) bool {
	return req.Environment != nil && req.Session == ""
}

// Decide mediates one request: in-process from the replicated snapshot
// when the flow is locally evaluable and fresh, otherwise along the
// configured degradation path (remote Decide, marked-stale local answers,
// or fail-safe deny).
func (c *Client) Decide(ctx context.Context, req grbac.Request) (Decision, error) {
	if !localEvaluable(req) {
		return c.remoteDecide(ctx, req, "flow requires primary state (session or live environment)")
	}
	if !c.locallyOwned(req) {
		return c.remoteDecide(ctx, req, "subject owned by a foreign shard")
	}
	if c.puller.Stale() {
		return c.decideStale(ctx, req)
	}
	d, err := c.sys.Decide(req)
	if err != nil {
		return Decision{}, err
	}
	c.localDecisions.Add(1)
	return Decision{Decision: d, Source: SourceLocal}, nil
}

// CheckAccess is the boolean hot path: a warm local check is a cache read
// against the compiled snapshot — no Decision clone, zero allocations.
func (c *Client) CheckAccess(ctx context.Context, req grbac.Request) (bool, error) {
	if localEvaluable(req) && c.locallyOwned(req) && !c.puller.Stale() {
		ok, err := c.sys.CheckAccess(req)
		if err != nil {
			return false, err
		}
		c.localDecisions.Add(1)
		return ok, nil
	}
	d, err := c.Decide(ctx, req)
	if err != nil {
		return false, err
	}
	return d.Allowed, nil
}

// DecideBatch mediates many requests at once. Locally-evaluable requests
// are answered against one policy snapshot (the same consistency
// guarantee the server's batch endpoint gives); the rest share one remote
// batch round trip. Results align index-for-index with reqs.
func (c *Client) DecideBatch(ctx context.Context, reqs []grbac.Request) []BatchResult {
	out := make([]BatchResult, len(reqs))
	stale := c.puller.Stale()

	var localIdx, remoteIdx []int
	for i, r := range reqs {
		switch {
		case !localEvaluable(r) || !c.locallyOwned(r):
			remoteIdx = append(remoteIdx, i)
		case stale && c.fallback == FallbackRemote:
			remoteIdx = append(remoteIdx, i)
		default:
			localIdx = append(localIdx, i)
		}
	}

	if len(localIdx) > 0 {
		if stale && c.fallback == FallbackDeny {
			for _, i := range localIdx {
				out[i].Decision = c.failSafe(reqs[i], "policy snapshot stale beyond bound")
			}
		} else {
			batch := make([]grbac.Request, len(localIdx))
			for j, i := range localIdx {
				batch[j] = reqs[i]
			}
			results := c.sys.DecideBatch(batch)
			for j, i := range localIdx {
				if results[j].Err != nil {
					out[i].Err = results[j].Err
					continue
				}
				c.localDecisions.Add(1)
				out[i].Decision = Decision{Decision: results[j].Decision, Source: SourceLocal}
				if stale {
					c.markStaleServed(reqs[i], &out[i].Decision)
				}
			}
		}
	}

	if len(remoteIdx) > 0 {
		c.remoteBatch(ctx, reqs, remoteIdx, out)
	}
	return out
}

// remoteBatch sends the remote-routed indices out as batch round trips —
// one per owning remote (a single primary call normally; one sub-batch
// per shard under WithShardRouting, dispatched concurrently) — falling
// back to per-request fail-safe denies when a remote is unreachable.
func (c *Client) remoteBatch(ctx context.Context, reqs []grbac.Request, idx []int, out []BatchResult) {
	type group struct {
		cl   *pdp.Client
		idx  []int
		wire []pdp.DecideRequest
	}
	groups := make(map[*pdp.Client]*group)
	for _, i := range idx {
		wire := pdp.FromCoreRequest(reqs[i])
		cl := c.remoteClientFor(&wire)
		if cl == nil {
			out[i].Decision = c.failSafe(reqs[i], "no remote fallback configured")
			continue
		}
		g := groups[cl]
		if g == nil {
			g = &group{cl: cl}
			groups[cl] = g
		}
		g.idx = append(g.idx, i)
		g.wire = append(g.wire, wire)
	}
	if len(groups) == 0 {
		return
	}
	if err := faults.Inject(faults.SDKFallback); err != nil {
		for _, g := range groups {
			for _, i := range g.idx {
				out[i].Decision = c.failSafe(reqs[i], "remote fallback failed: "+err.Error())
			}
		}
		return
	}
	var wg sync.WaitGroup
	for _, g := range groups {
		wg.Add(1)
		go func(g *group) {
			defer wg.Done()
			// Groups own disjoint indices, so writes to out never collide.
			c.dispatchRemoteBatch(ctx, reqs, g.cl, g.idx, g.wire, out)
		}(g)
	}
	wg.Wait()
}

// dispatchRemoteBatch sends one remote's sub-batch and maps the reply
// back onto the caller's index-aligned results.
func (c *Client) dispatchRemoteBatch(ctx context.Context, reqs []grbac.Request, cl *pdp.Client, idx []int, wire []pdp.DecideRequest, out []BatchResult) {
	resp, err := cl.DecideBatch(ctx, wire)
	if err != nil {
		// Mid-rebalance handoff: the whole sub-batch chased subjects that
		// migrated owners — follow the typed redirect once.
		if moved, ok := c.movedClient(err); ok {
			resp, err = moved.DecideBatch(ctx, wire)
		}
	}
	if err != nil && definitive(err) {
		for _, i := range idx {
			out[i].Err = err
		}
		return
	}
	if err != nil || len(resp.Results) != len(idx) {
		if err == nil {
			err = fmt.Errorf("sdk: remote batch returned %d results for %d requests",
				len(resp.Results), len(idx))
		}
		for _, i := range idx {
			out[i].Decision = c.failSafe(reqs[i], "remote fallback failed: "+err.Error())
		}
		return
	}
	for j, i := range idx {
		item := resp.Results[j]
		if item.Error != "" {
			out[i].Err = fmt.Errorf("sdk: remote decide: %s", item.Error)
			continue
		}
		c.remoteFallbacks.Add(1)
		out[i].Decision = Decision{
			Decision: item.Decision.ToCore(),
			Stale:    resp.Stale,
			Source:   SourceRemote,
		}
	}
}

// decideStale handles a locally-evaluable request whose snapshot is past
// the staleness bound, per the configured FallbackMode.
func (c *Client) decideStale(ctx context.Context, req grbac.Request) (Decision, error) {
	switch c.fallback {
	case FallbackServeStale:
		d, err := c.sys.Decide(req)
		if err != nil {
			return Decision{}, err
		}
		c.localDecisions.Add(1)
		out := Decision{Decision: d, Source: SourceLocal}
		c.markStaleServed(req, &out)
		return out, nil
	case FallbackDeny:
		return c.failSafe(req, "policy snapshot stale beyond bound"), nil
	default:
		return c.remoteDecide(ctx, req, "policy snapshot stale beyond bound")
	}
}

// remoteDecide routes one request to the primary, synthesizing a
// fail-safe deny when no remote path exists or the call fails.
func (c *Client) remoteDecide(ctx context.Context, req grbac.Request, why string) (Decision, error) {
	wire := pdp.FromCoreRequest(req)
	target := c.remoteClientFor(&wire)
	if target == nil {
		return c.failSafe(req, why+"; no remote fallback configured"), nil
	}
	if err := faults.Inject(faults.SDKFallback); err != nil {
		return c.failSafe(req, why+"; remote fallback failed: "+err.Error()), nil
	}
	resp, err := target.Decide(ctx, wire)
	if err != nil {
		// A 421 means the subject migrated owners under us: follow the
		// redirect once. The installed map converges via the watcher.
		if moved, ok := c.movedClient(err); ok {
			resp, err = moved.Decide(ctx, wire)
		}
	}
	if err != nil {
		if definitive(err) {
			// The primary answered and rejected the request itself (4xx):
			// that is the caller's error, not a degraded SDK — propagate it
			// instead of masking it as a fail-safe deny.
			return Decision{}, err
		}
		return c.failSafe(req, why+"; remote fallback failed: "+err.Error()), nil
	}
	c.remoteFallbacks.Add(1)
	return Decision{Decision: resp.ToCore(), Stale: resp.Stale, Source: SourceRemote}, nil
}

// definitive reports whether a remote error is the primary's considered
// rejection of the request (a non-retryable 4xx) rather than a sign the
// primary is unreachable or failing. Definitive errors propagate to the
// caller; everything else degrades to fail-safe deny.
func definitive(err error) bool {
	var re *pdp.RemoteError
	return errors.As(err, &re) &&
		re.Status >= 400 && re.Status < 500 && re.Status != http.StatusTooManyRequests
}

// markStaleServed annotates and accounts one stale-but-served local
// decision, and audits it so the trail shows freshness was traded away.
func (c *Client) markStaleServed(req grbac.Request, d *Decision) {
	d.Stale = true
	d.Reason += "; stale: local policy snapshot beyond staleness bound"
	c.staleServed.Add(1)
	if c.auditLog != nil {
		c.auditLog.Log(req, d.Decision)
	}
}

// failSafe synthesizes the closed-world answer for a request the SDK can
// mediate neither locally nor remotely, counting and auditing it. The
// deny is a degradation outcome, not an error: callers get a definitive
// (refusable) answer, and the audit trail explains why.
func (c *Client) failSafe(req grbac.Request, why string) Decision {
	d := grbac.Decision{
		Effect:      grbac.Deny,
		DefaultDeny: true,
		Strategy:    "fail-safe",
		Reason:      "fail-safe deny: " + why,
	}
	c.failSafeDenies.Add(1)
	if c.auditLog != nil {
		c.auditLog.Log(req, d)
	}
	return Decision{Decision: d, Stale: true, Source: SourceFailSafe}
}

// ActivateBundle verifies a raw signed policy bundle against the
// client's bundle verifier and, only if it verifies and advances the
// admitted revision, installs its state as the local policy. It returns
// the activated revision. Without WithBundleVerifier every bundle is
// refused: an embedded PEP never installs policy it cannot authenticate.
func (c *Client) ActivateBundle(raw []byte) (uint64, error) {
	if c.bundles == nil {
		return 0, fmt.Errorf("sdk: no bundle verifier configured: %w", bundle.ErrUnsigned)
	}
	b, err := c.bundles.Admit(raw)
	if err != nil {
		return 0, err
	}
	if err := c.sys.Replace(b.State); err != nil {
		return 0, fmt.Errorf("sdk: bundle revision %d verified but failed to install: %w",
			b.Manifest.Revision, err)
	}
	return b.Manifest.Revision, nil
}

// BundleStatus reports the client's bundle trust state (zero-valued
// without WithBundleVerifier).
func (c *Client) BundleStatus() bundle.Status { return c.bundles.Status() }

// Stats reports mediation traffic and replication health.
func (c *Client) Stats() Stats {
	return Stats{
		LocalDecisions:  c.localDecisions.Load(),
		RemoteFallbacks: c.remoteFallbacks.Load(),
		FailSafeDenies:  c.failSafeDenies.Load(),
		StaleServed:     c.staleServed.Load(),
		Generation:      c.sys.Generation(),
		Replication:     c.puller.Stats(),
		Core:            c.sys.Stats(),
	}
}
