package sdk

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	grbac "github.com/aware-home/grbac"
	"github.com/aware-home/grbac/internal/bundle"
	"github.com/aware-home/grbac/internal/core"
	"github.com/aware-home/grbac/internal/policy"
)

// makeSignedBundle signs the shared test policy at the given revision
// and returns the encoded bundle plus a verifier trusting its key.
func makeSignedBundle(t *testing.T, rev uint64) ([]byte, *bundle.Verifier) {
	t.Helper()
	pub, priv, err := bundle.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := policy.Compile(testPolicy)
	if err != nil {
		t.Fatal(err)
	}
	sys := core.NewSystem()
	if err := compiled.Apply(sys, nil); err != nil {
		t.Fatal(err)
	}
	st, _ := sys.Snapshot()
	b := bundle.Build(st, rev, time.Now())
	if err := b.Sign(priv, bundle.KeyID(pub)); err != nil {
		t.Fatal(err)
	}
	raw, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return raw, bundle.NewVerifier(pub)
}

// TestActivateBundleOffline is the air-gapped deployment shape: no
// primary, no replication feed — policy arrives only as signed bundles,
// and only verified bundles are installed.
func TestActivateBundleOffline(t *testing.T) {
	raw, v := makeSignedBundle(t, 1)
	fetch := &localSource{}
	fetch.setFail(errors.New("air-gapped"))
	c := newEmbedded(t, "", WithOfflineStart(), WithoutRemote(),
		WithFetcher(fetch), WithBundleVerifier(v))

	// Before activation: fail-safe deny (empty local policy, no remote).
	d, err := c.Decide(context.Background(), permitReq())
	if err != nil {
		t.Fatal(err)
	}
	if d.Allowed || d.Source != SourceFailSafe {
		t.Fatalf("pre-activation decision = %+v, want fail-safe deny", d)
	}

	// A tampered bundle is refused with the typed error and installs
	// nothing.
	tampered := bytes.Replace(raw, []byte(`"alice"`), []byte(`"intruder"`), 1)
	if _, err := c.ActivateBundle(tampered); !errors.Is(err, bundle.ErrBadSignature) {
		t.Fatalf("tampered ActivateBundle: %v", err)
	}
	if d, _ := c.Decide(context.Background(), permitReq()); d.Allowed {
		t.Fatal("tampered bundle changed local policy")
	}

	// The genuine bundle activates and local mediation works. The puller
	// has never synced, so force the stale path off via ServeStale — the
	// installed policy itself must answer.
	rev, err := c.ActivateBundle(raw)
	if err != nil {
		t.Fatalf("ActivateBundle: %v", err)
	}
	if rev != 1 {
		t.Fatalf("revision = %d", rev)
	}
	ok, err := c.System().CheckAccess(grbac.Request{
		Subject: "alice", Object: "tv", Transaction: "use",
		Environment: []grbac.RoleID{"weekday-free-time"},
	})
	if err != nil || !ok {
		t.Fatalf("post-activation local check = %v, %v", ok, err)
	}
	if st := c.BundleStatus(); st.Revision != 1 || st.Rejected != 1 {
		t.Fatalf("bundle status = %+v", st)
	}

	// Replaying the same revision is fenced.
	if _, err := c.ActivateBundle(raw); !errors.Is(err, bundle.ErrStale) {
		t.Fatalf("replay ActivateBundle: %v", err)
	}
}

func TestActivateBundleWithoutVerifierRefuses(t *testing.T) {
	raw, _ := makeSignedBundle(t, 1)
	fetch := &localSource{}
	fetch.setFail(errors.New("air-gapped"))
	c := newEmbedded(t, "", WithOfflineStart(), WithoutRemote(), WithFetcher(fetch))
	if _, err := c.ActivateBundle(raw); !errors.Is(err, bundle.ErrUnsigned) {
		t.Fatalf("verifier-less ActivateBundle: %v", err)
	}
}
