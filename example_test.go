package grbac_test

import (
	"fmt"
	"time"

	grbac "github.com/aware-home/grbac"
)

// ExampleSystem_Decide shows the §5.1 policy as library calls: one rule
// over three role kinds, mediated twice.
func ExampleSystem_Decide() {
	sys := grbac.NewSystem()
	_ = sys.AddRole(grbac.Role{ID: "child", Kind: grbac.SubjectRole})
	_ = sys.AddRole(grbac.Role{ID: "entertainment-devices", Kind: grbac.ObjectRole})
	_ = sys.AddRole(grbac.Role{ID: "weekday-free-time", Kind: grbac.EnvironmentRole})
	_ = sys.AddSubject("alice")
	_ = sys.AssignSubjectRole("alice", "child")
	_ = sys.AddObject("tv")
	_ = sys.AssignObjectRole("tv", "entertainment-devices")
	_ = sys.AddTransaction(grbac.SimpleTransaction("use"))
	_ = sys.Grant(grbac.Permission{
		Subject:     "child",
		Object:      "entertainment-devices",
		Environment: "weekday-free-time",
		Transaction: "use",
		Effect:      grbac.Permit,
	})

	inWindow, _ := sys.Decide(grbac.Request{
		Subject: "alice", Object: "tv", Transaction: "use",
		Environment: []grbac.RoleID{"weekday-free-time"},
	})
	outOfWindow, _ := sys.Decide(grbac.Request{
		Subject: "alice", Object: "tv", Transaction: "use",
		Environment: []grbac.RoleID{},
	})
	fmt.Println(inWindow.Effect, outOfWindow.Effect)
	// Output: permit deny
}

// ExampleBuildPolicy compiles a declarative policy and mediates with live
// environment-role evaluation.
func ExampleBuildPolicy() {
	sys, engine, err := grbac.BuildPolicy(`
subject role child;
object role toys;
env role playtime when time "daily 15:00-18:00";
subject bobby is child;
object blocks is toys;
transaction use;
grant child use toys when playtime;
`)
	if err != nil {
		fmt.Println(err)
		return
	}
	afternoon := time.Date(2000, 1, 17, 16, 0, 0, 0, time.UTC)
	night := time.Date(2000, 1, 17, 22, 0, 0, 0, time.UTC)
	for _, at := range []time.Time{afternoon, night} {
		ok, _ := sys.CheckAccess(grbac.Request{
			Subject: "bobby", Object: "blocks", Transaction: "use",
			Environment: engine.ActiveRolesAt(at, "bobby"),
		})
		fmt.Println(ok)
	}
	// Output:
	// true
	// false
}

// ExampleRoleCredential reproduces the paper's partial-authentication
// argument: role-level evidence can clear a threshold that identity-level
// evidence cannot.
func ExampleRoleCredential() {
	sys := grbac.NewSystem(grbac.WithMinConfidence(0.90))
	_ = sys.AddRole(grbac.Role{ID: "child", Kind: grbac.SubjectRole})
	_ = sys.AddRole(grbac.Role{ID: "entertainment", Kind: grbac.ObjectRole})
	_ = sys.AddSubject("alice")
	_ = sys.AssignSubjectRole("alice", "child")
	_ = sys.AddObject("tv")
	_ = sys.AssignObjectRole("tv", "entertainment")
	_ = sys.AddTransaction(grbac.SimpleTransaction("use"))
	_ = sys.Grant(grbac.Permission{
		Subject: "child", Object: "entertainment",
		Environment: grbac.AnyEnvironment, Transaction: "use", Effect: grbac.Permit,
	})

	// The Smart Floor: Alice at 75%, but "a child" at 98%.
	creds := grbac.CredentialSet{
		grbac.IdentityCredential("alice", 0.75, "smart-floor"),
		grbac.RoleCredential("child", 0.98, "smart-floor"),
	}
	d, _ := sys.Decide(grbac.Request{
		Subject: "alice", Object: "tv", Transaction: "use",
		Credentials: creds, Environment: []grbac.RoleID{},
	})
	fmt.Println(d.Allowed)
	// Output: true
}
